open Rlist_model

type scenario = {
  sname : string;
  description : string;
  nclients : int;
  initial : Document.t;
  schedule : Schedule.t;
}

let gen i intent = Schedule.Generate (i, intent)

let ds i = Schedule.Deliver_to_server i

(* [dc i k] delivers the next [k] pending server messages to client
   [i]. *)
let dc i k = List.init k (fun _ -> Schedule.Deliver_to_client i)

let reads n = Schedule.final_reads ~nclients:n

let figure1 =
  {
    sname = "figure1";
    description =
      "OT motivation: o1 = Ins(f,1) || o2 = Del(e,5) on \"efecte\"; both \
       replicas converge to \"effect\"";
    nclients = 2;
    initial = Document.of_string "efecte";
    schedule =
      [ gen 1 (Intent.Insert ('f', 1)); gen 2 (Intent.Delete 5); ds 1; ds 2 ]
      @ dc 1 2 @ dc 2 2 @ reads 2;
  }

let figure2 =
  {
    sname = "figure2";
    description =
      "three pairwise-concurrent operations, one per client, serialized o1 \
       => o2 => o3 (drives the Figure 4 state-space)";
    nclients = 3;
    initial = Document.empty;
    schedule =
      [
        gen 1 (Intent.Insert ('a', 0));
        gen 2 (Intent.Insert ('b', 0));
        gen 3 (Intent.Insert ('c', 0));
        ds 1;
        ds 2;
        ds 3;
      ]
      @ dc 1 3 @ dc 2 3 @ dc 3 3 @ reads 3;
  }

let figure3 =
  {
    sname = "figure3";
    description =
      "o3 || (o1 || o2) -> o4: client 1 receives o3 last, transforming it \
       along L = <o1, o2, o4> (Algorithm 1, Example 6.1)";
    nclients = 3;
    initial = Document.empty;
    schedule =
      [
        gen 1 (Intent.Insert ('a', 0));  (* o1 *)
        gen 2 (Intent.Insert ('b', 0));  (* o2 *)
        ds 1;  (* serial 1 *)
        ds 2;  (* serial 2 *)
      ]
      @ dc 1 2  (* client 1 sees ack(o1) and o2 *)
      @ [
          gen 1 (Intent.Insert ('d', 0));  (* o4, context {1,2} *)
          gen 3 (Intent.Insert ('c', 0));  (* o3, context {} *)
          ds 3;  (* serial 3 *)
          ds 1;  (* serial 4 *)
        ]
      @ dc 1 2 @ dc 2 4 @ dc 3 4 @ reads 3;
  }

let figure6 =
  {
    sname = "figure6";
    description =
      "the CSCW paper's schedule: o4 causally after o1 only, o3 concurrent \
       with everything; serialized o1 => o2 => o3 => o4";
    nclients = 3;
    initial = Document.empty;
    schedule =
      [
        gen 1 (Intent.Insert ('a', 0));  (* o1 *)
        ds 1;  (* serial 1 *)
      ]
      @ dc 1 1  (* ack(o1): client 1's context becomes {1} *)
      @ [
          gen 1 (Intent.Insert ('d', 1));  (* o4, context {1} *)
          gen 2 (Intent.Insert ('b', 0));  (* o2, context {} *)
          gen 3 (Intent.Insert ('c', 0));  (* o3, context {} *)
          ds 2;  (* serial 2 *)
          ds 3;  (* serial 3 *)
          ds 1;  (* serial 4 *)
        ]
      @ dc 1 3 @ dc 2 4 @ dc 3 4 @ reads 3;
  }

let figure7 =
  {
    sname = "figure7";
    description =
      "Jupiter violates the strong list specification: after Ins(x,0), \
       concurrently Del(x,0) / Ins(a,0) / Ins(b,1); lists \"ax\", \"xb\" and \
       the final \"ba\" force the cycle (a,x),(x,b),(b,a)";
    nclients = 3;
    initial = Document.empty;
    schedule =
      [ gen 1 (Intent.Insert ('x', 0)); ds 1 ]
      @ dc 1 1 @ dc 2 1 @ dc 3 1
      @ [
          gen 1 (Intent.Delete 0);  (* o2 = Del(x,0), context {1} *)
          gen 2 (Intent.Insert ('a', 0));  (* o3, context {1}: list "ax" *)
          gen 3 (Intent.Insert ('b', 1));  (* o4, context {1}: list "xb" *)
          ds 1;
          ds 2;
          ds 3;
        ]
      @ dc 1 3 @ dc 2 3 @ dc 3 3 @ reads 3;
  }

let figure8 =
  {
    sname = "figure8";
    description =
      "Example 8.1: o1 = Ins(x,2) / o2 = Del(b,1) / o3 = Ins(y,1) on \
       \"abc\", relayed in the order o3, o2, o1 — the incorrect dOPT-style \
       protocol diverges (\"ayxc\" vs \"axyc\")";
    nclients = 3;
    initial = Document.of_string "abc";
    schedule =
      [
        gen 1 (Intent.Insert ('x', 2));
        gen 2 (Intent.Delete 1);
        gen 3 (Intent.Insert ('y', 1));
        ds 3;
        ds 2;
        ds 1;
      ]
      @ dc 1 3 @ dc 2 3 @ dc 3 3 @ reads 3;
  }

let all = [ figure1; figure2; figure3; figure6; figure7; figure8 ]

let find name = List.find_opt (fun s -> s.sname = name) all
