(** Turning user intents into concrete operations.

    Every protocol's client does the same first step when a user
    invokes an operation: validate the position against the current
    document, mint a fresh element (for insertions) or look up the
    targeted element (for deletions), and describe the do event for
    the trace.  This module centralizes that step. *)

open Rlist_model

type resolution = {
  outcome : Protocol_intf.do_outcome;  (** For trace recording. *)
  op : Rlist_ot.Op.t option;  (** The concrete operation; [None] for
                                  reads. *)
}

(** [resolve ~client ~seq ~doc intent] resolves [intent] against
    [doc].  [seq] is the client's next sequence number; it is consumed
    only when an operation is actually minted (i.e. not for reads).

    @raise Invalid_argument if the intent's position is out of bounds
    for [doc]. *)
val resolve :
  client:int -> seq:int -> doc:Document.t -> Intent.t -> resolution
