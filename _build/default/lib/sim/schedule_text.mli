(** A line-oriented text format for schedules, so that an execution
    found by the random driver (e.g. a specification violation of an
    experimental protocol) can be saved, shared, and replayed
    verbatim against any protocol.

    Format (one directive per line, [#] starts a comment):

    {v
    clients 3
    initial abc
    gen 1 ins x 2
    gen 2 del 1
    gen 3 read
    c2s 3
    s2c 1
    v}

    [initial] is optional (defaults to the empty document).  Inserted
    characters must be printable and non-blank. *)

open Rlist_model

type file = {
  nclients : int;
  initial : Document.t;
  events : Schedule.t;
}

val to_string : ?initial:Document.t -> nclients:int -> Schedule.t -> string

(** Parse; errors mention the offending line. *)
val of_string : string -> (file, string) result

val save : path:string -> ?initial:Document.t -> nclients:int -> Schedule.t
  -> unit

val load : path:string -> (file, string) result
