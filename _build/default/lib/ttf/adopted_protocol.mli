(** An adOPTed-style peer-to-peer OT protocol (Ressel et al. 1996)
    over the TTF functions: {e causal} broadcast only — no server, no
    sequencer, no Lamport total order, no stability waiting.

    Each peer applies its own operations immediately and integrates a
    remote operation as soon as it is causally ready (vector clocks),
    into an n-ary ordered state-space driven by the TTF functions —
    no waiting for stability.  Different peers integrate concurrent
    operations in different orders — which is exactly what broke the
    naive dOPT foil (Figure 8), and what forces the Lamport-stability
    wait in {!Jupiter_css.Distributed_protocol} — but because the TTF
    functions satisfy CP1 {e and} CP2, the ladders commute and all
    integration orders build the same space.

    This contrasts all three coordination points in the repository:
    Jupiter needs a total order because its view-position functions
    violate CP2; TTF pays tombstones to satisfy CP2 and needs only
    causality; CRDTs pay identifiers and need even less. *)

open Rlist_ot

type message = {
  op : Op.t;  (** Model-position original operation. *)
  ctx : Context.t;  (** The state it was generated on. *)
  vc : int array;  (** Vector clock at generation (counting the
                       operation itself). *)
  lamport : int;  (** Canonical-order stamp — used only to order
                      sibling transitions deterministically, never
                      waited on. *)
  origin : int;
}

include Rlist_sim.P2p_protocol_intf.P2P_PROTOCOL with type message := message

(** Tombstones at a peer. *)
val tombstones : peer -> int
