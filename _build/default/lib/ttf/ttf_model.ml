open Rlist_model

type slot = {
  elt : Element.t;
  mutable tombstone : bool;
}

type t = { mutable slots : slot list }

let create ~initial =
  {
    slots =
      List.map
        (fun elt -> { elt; tombstone = false })
        (Document.elements initial);
  }

let view t =
  Document.of_elements
    (List.filter_map
       (fun slot -> if slot.tombstone then None else Some slot.elt)
       t.slots)

let model_length t = List.length t.slots

let tombstones t =
  List.length (List.filter (fun slot -> slot.tombstone) t.slots)

let model_position_of_view t pos =
  if pos < 0 then invalid_arg "Ttf_model: negative position";
  let rec go model_index visible = function
    | [] ->
      if visible = pos then model_index
      else invalid_arg "Ttf_model: view position out of bounds"
    | slot :: rest ->
      if (not slot.tombstone) && visible = pos then model_index
      else
        go (model_index + 1)
          (if slot.tombstone then visible else visible + 1)
          rest
  in
  go 0 0 t.slots

let insert t ~elt ~pos =
  if pos < 0 || pos > List.length t.slots then
    invalid_arg
      (Printf.sprintf "Ttf_model.insert: model position %d out of bounds" pos);
  if List.exists (fun s -> Element.equal s.elt elt) t.slots then
    invalid_arg
      (Format.asprintf "Ttf_model.insert: element %a already present"
         Element.pp elt);
  let rec go i = function
    | rest when i = pos -> { elt; tombstone = false } :: rest
    | [] -> assert false
    | slot :: rest -> slot :: go (i + 1) rest
  in
  t.slots <- go 0 t.slots

let delete t ~pos =
  match List.nth_opt t.slots pos with
  | None ->
    invalid_arg
      (Printf.sprintf "Ttf_model.delete: model position %d out of bounds" pos)
  | Some slot ->
    slot.tombstone <- true;
    slot.elt

let element_at t pos =
  match List.nth_opt t.slots pos with
  | None ->
    invalid_arg
      (Printf.sprintf "Ttf_model.element_at: position %d out of bounds" pos)
  | Some slot -> slot.elt
