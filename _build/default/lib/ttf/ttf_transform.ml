open Rlist_model
open Rlist_ot

(* Positions are model positions; deletions tombstone in place, so
   only insertions ever shift anything. *)
let xform o1 o2 =
  match o1.Op.action, o2.Op.action with
  | Op.Nop, _ | _, Op.Nop -> o1
  | _, Op.Del _ -> o1  (* deletions move nothing *)
  | Op.Ins (e1, p1), Op.Ins (e2, p2) ->
    if p1 < p2 then o1
    else if p1 > p2 then Op.make_ins ~id:o1.Op.id e1 (p1 + 1)
    else if Element.priority e1 e2 < 0 then Op.make_ins ~id:o1.Op.id e1 (p1 + 1)
    else o1
  | Op.Del (e1, p1), Op.Ins (_, p2) ->
    if p1 < p2 then o1 else Op.make_del ~id:o1.Op.id e1 (p1 + 1)

let xform_pair o1 o2 = xform o1 o2, xform o2 o1

let apply op model =
  match op.Op.action with
  | Op.Nop -> ()
  | Op.Ins (elt, pos) -> Ttf_model.insert model ~elt ~pos
  | Op.Del (elt, pos) ->
    let deleted = Ttf_model.delete model ~pos in
    if not (Element.equal deleted elt) then
      invalid_arg
        (Format.asprintf
           "Ttf_transform.apply: delete %a at model position %d found %a"
           Element.pp elt pos Element.pp deleted)

let check_cp1 base o1 o2 =
  let snapshot () = Ttf_model.create ~initial:base in
  let o1', o2' = xform_pair o1 o2 in
  let left = snapshot () in
  apply o1 left;
  apply o2' left;
  let right = snapshot () in
  apply o2 right;
  apply o1' right;
  Document.equal (Ttf_model.view left) (Ttf_model.view right)
  && Ttf_model.model_length left = Ttf_model.model_length right

let check_cp2 o1 o2 o3 =
  let via_o1_first = xform (xform o3 o1) (xform o2 o1) in
  let via_o2_first = xform (xform o3 o2) (xform o1 o2) in
  Op.equal via_o1_first via_o2_first
