(** The adOPTed interaction lattice (Ressel et al. 1996), memoized.

    [form_at] computes the form an operation takes at any causally
    closed state containing its generation context, by recursively
    transforming it up one operation at a time:

    {v form_at x σ = xform (form_at x (σ\{y})) (form_at y (σ\{y})) v}

    for a causally maximal [y ∈ σ \ ctx(x)].  With transformation
    functions satisfying CP1 {e and} CP2 the choice of [y] does not
    matter — every recursion order yields the same form (the classic
    adOPTed correctness argument), so replicas integrating concurrent
    operations in different causal orders still converge.  The n-ary
    ordered state-space cannot play this role without a total order:
    its ladders only materialize states along serialization prefixes. *)

open Rlist_model
open Rlist_ot

type t

(** [create ~transform ()] — [transform] must satisfy CP1 and CP2
    (e.g. {!Ttf_transform.xform}); with a CP2-violating function the
    lattice is still computable but different recursion orders may
    disagree, which is exactly Figure 8's bug. *)
val create : transform:(Op.t -> Op.t -> Op.t) -> unit -> t

(** Register an operation's original form and generation context.
    @raise Invalid_argument on re-registration. *)
val register : t -> Op.t -> ctx:Op_id.Set.t -> unit

(** [form_at t id state] is the operation's form at [state], which
    must be causally closed and contain the operation's context but
    not the operation itself.
    @raise Invalid_argument if the operation (or one needed along the
    recursion) is unregistered. *)
val form_at : t -> Op_id.t -> Op_id.Set.t -> Op.t

(** Number of memoized forms plus registered originals — the
    protocol's transformation-metadata footprint. *)
val size : t -> int

(** Transformation-function invocations so far. *)
val ot_count : t -> int
