(** The TTF model document (Oster et al. 2006): deletion tombstones
    elements instead of removing them, so positions in the {e model}
    never shift under deletion.  This is what buys the transformation
    functions CP2 (see {!Ttf_transform}) — and costs tombstone
    metadata, the same trade RGA and TreeDoc make on the CRDT side. *)

open Rlist_model

type t

val create : initial:Document.t -> t

(** The user-visible document (tombstones hidden). *)
val view : t -> Document.t

(** Model length, tombstones included. *)
val model_length : t -> int

val tombstones : t -> int

(** Translate a view position into a model position: the model index
    of the [pos]-th visible element ([model_length] when [pos] equals
    the view length).
    @raise Invalid_argument when out of bounds. *)
val model_position_of_view : t -> int -> int

(** [insert t ~elt ~pos] inserts at model position [pos].
    @raise Invalid_argument when out of bounds or duplicate. *)
val insert : t -> elt:Element.t -> pos:int -> unit

(** [delete t ~pos] tombstones the element at model position [pos]
    (idempotent on already-deleted elements) and returns it.
    @raise Invalid_argument when out of bounds. *)
val delete : t -> pos:int -> Element.t

(** Element at a model position. *)
val element_at : t -> int -> Element.t
