open Rlist_model
open Rlist_ot

module Memo = Hashtbl.Make (struct
  type t = Op_id.t * Op_id.Set.t

  let equal (id1, s1) (id2, s2) = Op_id.equal id1 id2 && Op_id.Set.equal s1 s2

  let hash (id, s) = (Op_id.hash id * 31) lxor Op_id.Set.content_hash s
end)

type t = {
  originals : (Op.t * Op_id.Set.t) Op_id.Table.t;
  memo : Op.t Memo.t;
  transform : Op.t -> Op.t -> Op.t;
  mutable ot_count : int;
}

let create ~transform () =
  {
    originals = Op_id.Table.create 64;
    memo = Memo.create 256;
    transform;
    ot_count = 0;
  }

let register t op ~ctx =
  if Op_id.Table.mem t.originals op.Op.id then
    invalid_arg
      (Format.asprintf "Lattice.register: %a already registered" Op_id.pp
         op.Op.id);
  Op_id.Table.replace t.originals op.Op.id (op, ctx)

let original t id =
  match Op_id.Table.find_opt t.originals id with
  | Some entry -> entry
  | None ->
    invalid_arg
      (Format.asprintf "Lattice: operation %a is not registered" Op_id.pp id)

let rec form_at t id state =
  let op, ctx = original t id in
  if Op_id.Set.equal state ctx then op
  else
    match Memo.find_opt t.memo (id, state) with
    | Some form -> form
    | None ->
      let extra = Op_id.Set.diff state ctx in
      if Op_id.Set.is_empty extra then
        invalid_arg
          (Format.asprintf
             "Lattice.form_at: state %a does not extend the context of %a"
             Op_id.Set.pp state Op_id.pp id);
      (* A causally maximal extra operation: none of the other extra
         operations has it in its context.  (Operations in ctx cannot,
         or it would be in ctx too, by transitivity of contexts.) *)
      let maximal =
        Op_id.Set.filter
          (fun y ->
            Op_id.Set.for_all
              (fun z ->
                Op_id.equal y z
                ||
                let _, ctx_z = original t z in
                not (Op_id.Set.mem y ctx_z))
              extra)
          extra
      in
      let y =
        match Op_id.Set.max_elt_opt maximal with
        | Some y -> y
        | None -> assert false (* a finite nonempty poset has maxima *)
      in
      let below = Op_id.Set.remove y state in
      let fx = form_at t id below in
      let fy = form_at t y below in
      t.ot_count <- t.ot_count + 1;
      let form = t.transform fx fy in
      Memo.replace t.memo (id, state) form;
      form

let size t = Memo.length t.memo + Op_id.Table.length t.originals

let ot_count t = t.ot_count
