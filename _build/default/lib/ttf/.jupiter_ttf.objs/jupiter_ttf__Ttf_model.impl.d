lib/ttf/ttf_model.ml: Document Element Format List Printf Rlist_model
