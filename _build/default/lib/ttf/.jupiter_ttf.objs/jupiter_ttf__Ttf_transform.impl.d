lib/ttf/ttf_transform.ml: Document Element Format Op Rlist_model Rlist_ot Ttf_model
