lib/ttf/ttf_transform.mli: Op Rlist_model Rlist_ot Ttf_model
