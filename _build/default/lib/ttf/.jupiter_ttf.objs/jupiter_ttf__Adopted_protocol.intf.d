lib/ttf/adopted_protocol.mli: Context Op Rlist_ot Rlist_sim
