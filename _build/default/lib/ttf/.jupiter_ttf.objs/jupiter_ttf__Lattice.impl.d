lib/ttf/lattice.ml: Format Hashtbl Op Op_id Rlist_model Rlist_ot
