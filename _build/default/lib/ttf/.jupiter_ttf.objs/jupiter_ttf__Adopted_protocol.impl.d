lib/ttf/adopted_protocol.ml: Array Context Lattice List Op Op_id Rlist_model Rlist_ot Rlist_sim Ttf_model Ttf_transform
