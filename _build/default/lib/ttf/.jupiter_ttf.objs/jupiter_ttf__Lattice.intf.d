lib/ttf/lattice.mli: Op Op_id Rlist_model Rlist_ot
