lib/ttf/ttf_model.mli: Document Element Rlist_model
