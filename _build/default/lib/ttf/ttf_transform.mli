(** Tombstone transformation functions (Oster et al. 2006).

    Because deletion never shifts model positions, the case analysis
    loses exactly the cases that break CP2 for the view-based
    functions: transforming against a deletion is the identity, and
    deletions only ever shift right past insertions.  These functions
    satisfy {e both} CP1 and CP2 (property-tested exhaustively in
    [test/test_ttf.ml]), which is what lets the adOPTed-style protocol
    converge with {e only causal} delivery — no server, no sequencer,
    no timestamps (contrast with every Jupiter variant). *)

open Rlist_ot

(** Operations are {!Rlist_ot.Op.t} values interpreted against model
    positions: [Ins] inserts at a model position, [Del] tombstones a
    model position. *)

val xform : Op.t -> Op.t -> Op.t

val xform_pair : Op.t -> Op.t -> Op.t * Op.t

(** Apply to a TTF model. *)
val apply : Op.t -> Ttf_model.t -> unit

(** CP1 on a model instance: starting from a fresh model of the given
    document, both execution orders leave equal views and equal model
    lengths.  The operations must be defined on that model. *)
val check_cp1 : Rlist_model.Document.t -> Op.t -> Op.t -> bool

(** CP2 instance check (pure, on operations). *)
val check_cp2 : Op.t -> Op.t -> Op.t -> bool
