lib/treedoc/protocol.mli: Element Op_id Rlist_model Rlist_sim Tree_path
