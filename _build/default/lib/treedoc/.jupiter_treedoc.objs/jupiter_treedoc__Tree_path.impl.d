lib/treedoc/tree_path.ml: Format Int
