lib/treedoc/treedoc_list.ml: Document Element Format List Op_id Printf Rlist_model Tree_path
