lib/treedoc/tree_path.mli: Format
