lib/treedoc/protocol.ml: Element List Op_id Rlist_model Rlist_ot Rlist_sim Rlist_spec Tree_path Treedoc_list
