lib/treedoc/treedoc_list.mli: Document Element Op_id Rlist_model Tree_path
