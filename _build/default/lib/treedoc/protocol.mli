(** TreeDoc as a client/server protocol for the simulation engine: a
    pure-relay server as for RGA and Logoot, with acknowledgement
    messages keeping schedules aligned. *)

open Rlist_model

type treedoc_op =
  | Tins of {
      elt : Element.t;
      at : Tree_path.t;
    }
  | Tdel of {
      id : Op_id.t;
      target : Op_id.t;
    }

val op_id : treedoc_op -> Op_id.t

type c2s = { top : treedoc_op }

type s2c =
  | Forward of treedoc_op
  | Ack

include
  Rlist_sim.Protocol_intf.PROTOCOL with type c2s := c2s and type s2c := s2c

val client_tombstones : client -> int
