type step = {
  bit : int;
  site : int;
  seq : int;
}

type t = step list

let compare_step a b =
  match Int.compare a.bit b.bit with
  | 0 -> (
    match Int.compare a.site b.site with
    | 0 -> Int.compare a.seq b.seq
    | c -> c)
  | c -> c

(* Infix order: when one path is a strict prefix of the other, the
   longer one sorts by the bit of its first extra step — left subtree
   (0) before the node, right subtree (1) after. *)
let rec compare p q =
  match p, q with
  | [], [] -> 0
  | [], s :: _ -> if s.bit = 0 then 1 else -1
  | s :: _, [] -> if s.bit = 0 then -1 else 1
  | a :: p', b :: q' -> (
    match compare_step a b with
    | 0 -> compare p' q'
    | c -> c)

let equal p q = compare p q = 0

let child p ~bit ~site ~seq =
  if bit <> 0 && bit <> 1 then invalid_arg "Tree_path.child: bit must be 0/1";
  p @ [ { bit; site; seq } ]

let rec first_step_below ~parent path =
  match parent, path with
  | [], [] -> None
  | [], s :: _ -> Some s.bit
  | _ :: _, [] -> None
  | a :: parent', b :: path' ->
    if compare_step a b = 0 then first_step_below ~parent:parent' path'
    else None

let pp ppf p =
  Format.fprintf ppf "/%a"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_char ppf '/')
       (fun ppf s -> Format.fprintf ppf "%d:%d:%d" s.bit s.site s.seq))
    p
