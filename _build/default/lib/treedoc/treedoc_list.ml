open Rlist_model

type node = {
  path : Tree_path.t;
  elt : Element.t;
  mutable tombstone : bool;
}

type t = {
  mutable nodes : node list;  (* sorted in infix (document) order *)
  site : int;
  mutable next_seq : int;
  index : node Op_id.Table.t;
}

let create ~site ~initial =
  let index = Op_id.Table.create 64 in
  (* Seed initial elements as a right-leaning vine under the root. *)
  let rec vine path i = function
    | [] -> []
    | elt :: rest ->
      let path = Tree_path.child path ~bit:1 ~site:0 ~seq:i in
      let node = { path; elt; tombstone = false } in
      Op_id.Table.replace index elt.Element.id node;
      node :: vine path (i + 1) rest
  in
  let nodes = vine [] 1 (Document.elements initial) in
  { nodes; site; next_seq = 1; index }

let document t =
  Document.of_elements
    (List.filter_map
       (fun node -> if node.tombstone then None else Some node.elt)
       t.nodes)

let size t = List.length t.nodes

let tombstones t =
  List.length (List.filter (fun node -> node.tombstone) t.nodes)

(* Does any stored node lie strictly below [parent] with its first step
   on the given side? *)
let has_child t parent ~bit =
  List.exists
    (fun node -> Tree_path.first_step_below ~parent node.path = Some bit)
    t.nodes

(* The all-node (tombstones included) neighbours around visible
   position [pos]: the node that will precede the new element and the
   node that will follow it. *)
let all_node_bounds t ~pos =
  let visible = List.filter (fun n -> not n.tombstone) t.nodes in
  let n = List.length visible in
  if pos < 0 || pos > n then
    invalid_arg (Printf.sprintf "Treedoc_list: position %d out of bounds" pos);
  let hi = if pos = n then None else Some (List.nth visible pos) in
  (* predecessor among ALL nodes: the last node strictly before hi (or
     the overall last when inserting at the end) *)
  let before =
    match hi with
    | None -> t.nodes
    | Some h ->
      List.filter (fun node -> Tree_path.compare node.path h.path < 0) t.nodes
  in
  let lo =
    match List.rev before with
    | [] -> None
    | last :: _ -> Some last
  in
  lo, hi

let allocate t ~pos =
  let lo, hi = all_node_bounds t ~pos in
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  match lo, hi with
  | None, None -> Tree_path.child [] ~bit:1 ~site:t.site ~seq
  | Some p, _ when not (has_child t p.path ~bit:1) ->
    Tree_path.child p.path ~bit:1 ~site:t.site ~seq
  | _, Some q ->
    (* p has a right subtree, so its in-order successor q is that
       subtree's leftmost node: q has no left child. *)
    assert (not (has_child t q.path ~bit:0));
    Tree_path.child q.path ~bit:0 ~site:t.site ~seq
  | Some p, None ->
    (* inserting at the very end: the last node has no right child *)
    invalid_arg
      (Format.asprintf
         "Treedoc_list.allocate: last node %a unexpectedly has a right child"
         Tree_path.pp p.path)

let insert t ~elt ~at =
  if Op_id.Table.mem t.index elt.Element.id then
    invalid_arg
      (Format.asprintf "Treedoc_list.insert: element %a already present"
         Element.pp elt);
  let fresh = { path = at; elt; tombstone = false } in
  let rec place = function
    | [] -> [ fresh ]
    | node :: rest as all ->
      let c = Tree_path.compare at node.path in
      if c < 0 then fresh :: all
      else if c = 0 then
        invalid_arg
          (Format.asprintf "Treedoc_list.insert: path %a already taken"
             Tree_path.pp at)
      else node :: place rest
  in
  t.nodes <- place t.nodes;
  Op_id.Table.replace t.index elt.Element.id fresh

let delete t ~target =
  match Op_id.Table.find_opt t.index target with
  | None ->
    invalid_arg
      (Format.asprintf "Treedoc_list.delete: unknown element %a" Op_id.pp
         target)
  | Some node -> node.tombstone <- true
