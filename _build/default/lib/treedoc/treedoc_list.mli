(** The TreeDoc replicated list: tree-path-identified elements with
    tombstoned deletion (Section 9's second CRDT baseline, between RGA
    and Logoot in the design space: a tree like RGA's timestamps
    induce, with tombstones like RGA but path identifiers like
    Logoot). *)

open Rlist_model

type t

val create : site:int -> initial:Document.t -> t

val document : t -> Document.t

(** Nodes including tombstones — the metadata footprint. *)
val size : t -> int

val tombstones : t -> int

(** [allocate t ~pos] picks a fresh path for an insertion at visible
    position [pos]: a new leaf hanging off one of the two all-node
    neighbours (right child of the predecessor if free, else left
    child of the successor). *)
val allocate : t -> pos:int -> Tree_path.t

(** [insert t ~elt ~at] integrates an insertion.
    @raise Invalid_argument if the path is already taken. *)
val insert : t -> elt:Element.t -> at:Tree_path.t -> unit

(** Tombstone the element (idempotent).
    @raise Invalid_argument if the element was never inserted. *)
val delete : t -> target:Op_id.t -> unit
