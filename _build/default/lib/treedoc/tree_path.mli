(** TreeDoc position identifiers (Preguiça et al. 2009): paths in a
    binary tree, read in infix order; concurrent same-position inserts
    become sibling "mini-nodes" told apart by a disambiguator.

    The list order is the infix order: a node's left subtree comes
    before the node, which comes before its right subtree; sibling
    mini-nodes are ordered by disambiguator.  Identifiers never change,
    so TreeDoc — like RGA — satisfies the strong list specification
    (paper, Section 9). *)

type step = {
  bit : int;  (** 0 = left, 1 = right. *)
  site : int;
  seq : int;  (** Per-site counter, making steps unique. *)
}

type t = step list
(** Root-to-node path; the empty path is the (virtual, element-less)
    root. *)

(** Infix order. *)
val compare : t -> t -> int

val equal : t -> t -> bool

(** [child p ~bit ~site ~seq] extends the path one level down. *)
val child : t -> bit:int -> site:int -> seq:int -> t

(** [first_step_below ~parent path] is the bit of [path]'s first step
    under [parent], if [path] is strictly below it. *)
val first_step_below : parent:t -> t -> int option

val pp : Format.formatter -> t -> unit
