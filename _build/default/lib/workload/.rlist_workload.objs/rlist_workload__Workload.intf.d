lib/workload/workload.mli: Intent Random Rlist_model Rlist_sim
