lib/workload/workload.ml: Array Char Intent List Random Rlist_model Rlist_sim
