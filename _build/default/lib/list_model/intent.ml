type t =
  | Insert of char * int
  | Delete of int
  | Read

let valid_for ~doc_length = function
  | Insert (_, p) -> 0 <= p && p <= doc_length
  | Delete p -> 0 <= p && p < doc_length
  | Read -> true

let pp ppf = function
  | Insert (c, p) -> Format.fprintf ppf "Insert(%c, %d)" c p
  | Delete p -> Format.fprintf ppf "Delete(%d)" p
  | Read -> Format.pp_print_string ppf "Read"

let to_string t = Format.asprintf "%a" pp t
