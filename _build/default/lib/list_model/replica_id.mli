(** Identifiers of replicas in the client/server system.

    Jupiter adopts a centralized architecture (paper, Section 4.4): a
    single server plus [n] collaborating clients connected to it over
    FIFO channels.  The server holds its own copy of the replicated
    list, so it is itself a replica. *)

type t =
  | Server
  | Client of int  (** Clients are numbered from [1] to [n]. *)

val compare : t -> t -> int

val equal : t -> t -> bool

val is_client : t -> bool

(** [client_exn r] returns the client number of [r].
    @raise Invalid_argument if [r] is the server. *)
val client_exn : t -> int

val pp : Format.formatter -> t -> unit

val to_string : t -> string
