type t = {
  value : char;
  id : Op_id.t;
}

let make ~value ~id = { value; id }

let compare a b = Op_id.compare a.id b.id

let equal a b = compare a b = 0

let priority a b =
  match Int.compare a.id.Op_id.client b.id.Op_id.client with
  | 0 -> Int.compare a.id.Op_id.seq b.id.Op_id.seq
  | c -> c

let pp ppf t = Format.fprintf ppf "%c<%a>" t.value Op_id.pp t.id
