type t =
  | Server
  | Client of int

let compare a b =
  match a, b with
  | Server, Server -> 0
  | Server, Client _ -> -1
  | Client _, Server -> 1
  | Client i, Client j -> Int.compare i j

let equal a b = compare a b = 0

let is_client = function
  | Server -> false
  | Client _ -> true

let client_exn = function
  | Client i -> i
  | Server -> invalid_arg "Replica_id.client_exn: server"

let pp ppf = function
  | Server -> Format.pp_print_string ppf "server"
  | Client i -> Format.fprintf ppf "c%d" i

let to_string t = Format.asprintf "%a" pp t
