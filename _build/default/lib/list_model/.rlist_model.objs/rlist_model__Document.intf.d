lib/list_model/document.mli: Element Format
