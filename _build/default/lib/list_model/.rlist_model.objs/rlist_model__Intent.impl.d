lib/list_model/intent.ml: Format
