lib/list_model/replica_id.ml: Format Int
