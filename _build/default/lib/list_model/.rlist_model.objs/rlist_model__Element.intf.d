lib/list_model/element.mli: Format Op_id
