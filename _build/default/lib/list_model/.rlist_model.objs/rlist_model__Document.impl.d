lib/list_model/document.ml: Element Format List Op_id Printf String
