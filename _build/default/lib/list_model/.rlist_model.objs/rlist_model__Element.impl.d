lib/list_model/element.ml: Format Int Op_id
