lib/list_model/op_id.mli: Format Hashtbl Map Set
