lib/list_model/replica_id.mli: Format
