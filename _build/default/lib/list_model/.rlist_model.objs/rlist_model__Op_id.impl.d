lib/list_model/op_id.ml: Format Hashtbl Int Map Set
