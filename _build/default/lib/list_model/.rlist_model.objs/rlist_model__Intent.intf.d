lib/list_model/intent.mli: Format
