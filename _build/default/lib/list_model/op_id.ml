type t = {
  client : int;
  seq : int;
}

let make ~client ~seq =
  if client < 0 then invalid_arg "Op_id.make: negative client";
  if seq < 1 then invalid_arg "Op_id.make: sequence numbers start at 1";
  { client; seq }

let initial ~seq = { client = 0; seq }

let is_initial t = t.client = 0

let compare a b =
  match Int.compare a.client b.client with
  | 0 -> Int.compare a.seq b.seq
  | c -> c

let equal a b = compare a b = 0

let hash t = (t.client * 1_000_003) lxor t.seq

let pp ppf t =
  if is_initial t then Format.fprintf ppf "init.%d" t.seq
  else Format.fprintf ppf "%d.%d" t.client t.seq

let to_string t = Format.asprintf "%a" pp t

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = struct
  include Set.Make (Ord)

  let content_hash s =
    (* fold visits elements in ascending order: deterministic. *)
    fold (fun id acc -> (acc * 31) + hash id) s 0

  let pp ppf s =
    Format.fprintf ppf "{%a}"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
         pp)
      (elements s)

  let canonical = elements
end

module Map = Map.Make (Ord)

module State_table = Hashtbl.Make (struct
  type nonrec t = Set.t

  let equal = Set.equal

  let hash = Set.content_hash
end)

module Table = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal

  let hash = hash
end)
