(** List elements.

    An element couples a user-visible value (a character, as in the
    paper's collaborative text-editing scenarios) with the identifier
    of the insertion that created it.  Element uniqueness (paper,
    Section 3.1) therefore holds by construction, and there is a
    one-to-one correspondence between inserted elements and insert
    operations. *)

type t = {
  value : char;
  id : Op_id.t;
}

val make : value:char -> id:Op_id.t -> t

(** Comparison is by identity ([id]) only: the same character inserted
    twice yields two distinct elements. *)
val compare : t -> t -> int

val equal : t -> t -> bool

(** [priority a b] is positive when [a] takes priority over [b] in the
    insert/insert transformation tie-break.  Following the paper
    (Figure 7 caption), an element inserted by a client with a larger
    identifier has higher priority; sequence numbers break the
    remaining (impossible in well-formed executions) ties. *)
val priority : t -> t -> int

val pp : Format.formatter -> t -> unit
