(** Globally unique operation identifiers.

    Every user operation (insertion or deletion) is identified by the
    client that generated it together with a per-client sequence
    number.  The paper assumes all inserted elements are unique, "which
    can be done by attaching replica identifiers and sequence numbers"
    (Section 3.1); the identifier of an insertion doubles as the
    identity of the inserted element.

    Replica states in the Jupiter protocols are represented by the
    {e set} of (original) operations a replica has processed
    (Definition 4.5), so this module also provides canonical sets of
    operation identifiers. *)

type t = {
  client : int;  (** Generating client; [0] is reserved for pre-existing
                     elements of a non-empty initial document. *)
  seq : int;     (** Per-client sequence number, starting at 1. *)
}

val make : client:int -> seq:int -> t

(** Identifier for the [seq]-th element of the initial document.  The
    initial elements are not produced by any do event; they use the
    reserved client number [0]. *)
val initial : seq:int -> t

val is_initial : t -> bool

val compare : t -> t -> int

val equal : t -> t -> bool

val hash : t -> int

val pp : Format.formatter -> t -> unit

val to_string : t -> string

(** Sets of operation identifiers, used as replica states and as
    operation contexts. *)
module Set : sig
  include Set.S with type elt = t

  val pp : Format.formatter -> t -> unit

  (** Canonical representation: elements in increasing order.  Two
      equal sets produce structurally equal lists, so the result is a
      valid hash-table key (unlike the balanced-tree representation of
      the set itself). *)
  val canonical : t -> elt list

  (** A content hash over {e all} elements (in ascending order).
      [Hashtbl.hash] inspects only a prefix of a structure, which
      degenerates badly on sets sharing long prefixes — exactly what
      replica states do. *)
  val content_hash : t -> int
end

(** Hash tables keyed by operation-identifier sets (replica states),
    using {!Set.content_hash} and {!Set.equal}. *)
module State_table : Hashtbl.S with type key = Set.t

module Map : Map.S with type key = t

(** Hash table keyed by operation identifiers. *)
module Table : Hashtbl.S with type key = t
