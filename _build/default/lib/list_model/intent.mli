(** User intents: the operations a user asks a replica to perform.

    An intent is the user-level view of the three replicated-list
    operations (paper, Section 3.1).  The replica turns an [Insert]
    intent into a concrete [Ins(a, p)] operation by minting a fresh
    element, and a [Delete] intent into [Del(a, p)] by looking up the
    element currently at the given position. *)

type t =
  | Insert of char * int  (** [Insert (c, p)]: insert character [c] at
                              position [p]. *)
  | Delete of int  (** [Delete p]: delete the element currently at
                       position [p]. *)
  | Read  (** Return the current list contents. *)

(** [valid_for ~doc_length i] checks that the positions in [i] are in
    bounds for a document of the given length. *)
val valid_for : doc_length:int -> t -> bool

val pp : Format.formatter -> t -> unit

val to_string : t -> string
