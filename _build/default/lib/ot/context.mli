(** Operation contexts (paper, Definition 4.6).

    The context of an operation is the replica state — the set of
    original operations — on which it is defined.  An original
    operation's context is the state it was generated from; each
    transformation [o{ox}] extends the context with [org(ox)].

    Contexts are what the Jupiter protocols match on: when a replica
    meets an operation it "searches the state-space for the state that
    matches the context" (Section 6.2). *)

open Rlist_model

type t = Op_id.Set.t

val empty : t

(** [extend ctx op] is the context after processing [op] (its original
    form joins the context). *)
val extend : t -> Op.t -> t

val mem : t -> Op.t -> bool

val equal : t -> t -> bool

val subset : t -> t -> bool

(** A context-carrying operation, as shipped between replicas in the
    CSS protocol: the {e original} form of the operation together with
    the state it is defined on. *)
type op_in_context = {
  op : Op.t;
  ctx : t;
}

val with_context : Op.t -> ctx:t -> op_in_context

val pp : Format.formatter -> t -> unit

val pp_op_in_context : Format.formatter -> op_in_context -> unit
