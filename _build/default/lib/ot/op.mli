(** List operations, in original and transformed form.

    Following the paper (Section 3.1 and footnote 2), an operation
    carries both the element it concerns and a position: operational
    transformation acts on positions, while the strong/weak list
    specifications refer to the element itself.

    An operation keeps its identity ({!Op_id.t}) across
    transformations: [o{L}] — the result of transforming [o] against a
    sequence [L] — is a different {e form} of the same original
    operation [org(o)] (Definition 4.5).  A delete transformed against
    the deletion of the same element degenerates to [Nop], the idle
    operation (paper, footnote 10). *)

open Rlist_model

type action =
  | Ins of Element.t * int  (** Insert the element at the position. *)
  | Del of Element.t * int  (** Delete the element at the position. *)
  | Nop  (** Idle: the effect was cancelled by a transformation. *)

type t = {
  id : Op_id.t;  (** Identity of the original operation. *)
  action : action;
}

val make_ins : id:Op_id.t -> Element.t -> int -> t

val make_del : id:Op_id.t -> Element.t -> int -> t

val nop : id:Op_id.t -> t

val is_nop : t -> bool

val is_ins : t -> bool

val is_del : t -> bool

(** The element an operation inserts or deletes; [None] for [Nop]. *)
val element : t -> Element.t option

(** The position an operation acts on; [None] for [Nop]. *)
val position : t -> int option

(** [apply op doc] executes [op] on [doc].

    @raise Invalid_argument if the position is out of bounds, or if a
    delete's position does not hold the operation's element — both
    indicate a protocol bug (an operation applied outside the state it
    is defined on). *)
val apply : t -> Document.t -> Document.t

(** Structural equality of forms: same identity {e and} same action. *)
val equal : t -> t -> bool

val compare : t -> t -> int

val pp : Format.formatter -> t -> unit

val to_string : t -> string
