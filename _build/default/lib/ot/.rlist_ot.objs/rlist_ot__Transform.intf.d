lib/ot/transform.mli: Document Op Rlist_model
