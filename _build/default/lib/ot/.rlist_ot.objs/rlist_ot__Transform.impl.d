lib/ot/transform.ml: Document Element List Op Rlist_model
