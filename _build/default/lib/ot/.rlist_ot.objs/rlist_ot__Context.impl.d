lib/ot/context.ml: Format Op Op_id Rlist_model
