lib/ot/op.mli: Document Element Format Op_id Rlist_model
