lib/ot/context.mli: Format Op Op_id Rlist_model
