lib/ot/op.ml: Document Element Format Int Op_id Rlist_model
