type violation = {
  spec : string;
  reason : string;
  culprits : Event.t list;
}

type result =
  | Satisfied
  | Violated of violation

let is_satisfied = function
  | Satisfied -> true
  | Violated _ -> false

let violated ~spec ~culprits reason = Violated { spec; reason; culprits }

let rec all = function
  | [] -> Satisfied
  | check :: rest -> (
    match check () with
    | Satisfied -> all rest
    | Violated _ as v -> v)

let pp ppf = function
  | Satisfied -> Format.pp_print_string ppf "satisfied"
  | Violated v ->
    Format.fprintf ppf "@[<v>violated (%s): %s%a@]" v.spec v.reason
      (fun ppf -> function
        | [] -> ()
        | culprits ->
          Format.fprintf ppf "@,@[<v2>witnesses:@,%a@]"
            (Format.pp_print_list Event.pp) culprits)
      v.culprits
