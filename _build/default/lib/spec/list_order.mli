(** The list order (paper, Definition 8.1) as a digraph over elements.

    For elements [a, b] of an abstract execution, [a -lo-> b] iff some
    event returned a list in which [a] appears before [b].  The strong
    list specification needs this relation to extend to a strict total
    order over {e all} elements — i.e. the digraph must be acyclic —
    while the weak specification only needs it to restrict to a strict
    total order on each returned list, which is exactly pairwise state
    compatibility (Definition 8.2, Lemma 8.3). *)

open Rlist_model

type t

(** Build the list-order digraph from the lists returned by a set of
    events. *)
val of_documents : Document.t list -> t

val num_nodes : t -> int

val num_edges : t -> int

(** [mem_edge t a b] reports whether [a] is ordered before [b]. *)
val mem_edge : t -> Element.t -> Element.t -> bool

(** A cycle witness, as a sequence of elements each ordered before the
    next and the last before the first; [None] when acyclic. *)
val find_cycle : t -> Element.t list option

(** A strict total order (as a list, smallest first) extending the
    relation; [None] when the relation is cyclic. *)
val linear_extension : t -> Element.t list option

(** First pair of pairwise-incompatible documents (Definition 8.2)
    among the given ones, with two common elements witnessing the
    disagreement; [None] when all pairs are compatible. *)
val first_incompatible :
  Document.t list -> (Document.t * Document.t * Element.t * Element.t) option
