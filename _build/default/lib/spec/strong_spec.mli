(** The strong list specification (paper, Definition 3.2).

    Beyond the weak specification, the strong one requires the list
    order [lo] to be transitive, irreflexive, and total over {e all}
    inserted elements — orderings relative to deleted elements must
    hold even after the deletion.  Since condition 1b forces [lo] to
    contain the order of every returned list, such an [lo] exists iff
    the union list-order digraph is acyclic (any linear extension then
    works).  The check is exact. *)

val check : Trace.t -> Check.result

(** A concrete total list order witnessing satisfaction, when one
    exists. *)
val witness_order : Trace.t -> Rlist_model.Element.t list option
