(** Traces: concrete histories of do events, ready for specification
    checking.

    A trace is the checker-facing image of an abstract execution
    [A = (H, vis)] (Definition 2.9): the history [H] of do events in
    order, with the visibility relation recorded extensionally in each
    event ([e1 -vis-> e2] iff the update of [e1] is in [e2.visible]).

    A trace may start from a non-empty initial document; its elements
    behave as insertions visible to every event (they let us reproduce
    the paper's worked examples, which start from lists such as
    "efecte" or "abc"). *)

open Rlist_model

type t = {
  initial : Document.t;
  events : Event.t list;  (** In history ([H]) order. *)
}

val make : initial:Document.t -> events:Event.t list -> t

val events : t -> Event.t list

val updates : t -> Event.t list

val reads : t -> Event.t list

(** All elements ever inserted, including the initial ones —
    [elems(A)] in the paper. *)
val elems : t -> Element.t list

(** Map from update identifier to its event. *)
val update_index : t -> Event.t Op_id.Map.t

(** [inserted_element t id] is the element inserted by update [id]:
    either an insertion event's element or an initial element. *)
val inserted_element : t -> Op_id.t -> Element.t option

(** Structural well-formedness: event identifiers are positions in the
    history; per-replica visible sets grow monotonically (thread of
    execution, Definition 2.7); updates are visible to themselves;
    every visible identifier resolves to an update (or initial
    element); update identifiers are unique.  Returns a description of
    the first problem found. *)
val validate : t -> (unit, string) result

val pp : Format.formatter -> t -> unit
