(** Results of specification checks. *)

type violation = {
  spec : string;  (** Which specification was violated. *)
  reason : string;  (** Human-readable description of the witness. *)
  culprits : Event.t list;  (** Events witnessing the violation. *)
}

type result =
  | Satisfied
  | Violated of violation

val is_satisfied : result -> bool

val violated : spec:string -> culprits:Event.t list -> string -> result

(** [all checks] is the first violation among [checks] (evaluated
    lazily, in order), or [Satisfied]. *)
val all : (unit -> result) list -> result

val pp : Format.formatter -> result -> unit
