open Rlist_model

let spec = "convergence property"

let check_events events =
  (* Index events by their visible update set; all events in a bucket
     must return the same list. *)
  let buckets = Hashtbl.create 64 in
  let rec go = function
    | [] -> Check.Satisfied
    | e :: rest -> (
      let key = Op_id.Set.canonical e.Event.visible in
      match Hashtbl.find_opt buckets key with
      | None ->
        Hashtbl.add buckets key e;
        go rest
      | Some e0 ->
        if Document.equal e0.Event.result e.Event.result then go rest
        else
          Check.violated ~spec ~culprits:[ e0; e ]
            (Format.asprintf
               "events #%d and #%d observe the same updates %a but return %a \
                and %a"
               e0.Event.eid e.Event.eid Op_id.Set.pp e.Event.visible
               Document.pp e0.Event.result Document.pp e.Event.result))
  in
  go events

let check trace = check_events (Trace.reads trace)

let check_all_events trace =
  (* An update is visible to itself, so two distinct updates never
     share a bucket with each other — but each shares a bucket with
     the reads (and there is at most one update per bucket), which is
     exactly the comparison we want. *)
  check_events (Trace.events trace)
