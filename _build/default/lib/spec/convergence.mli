(** The convergence property (paper, Definition 3.1): two reads that
    observe the same set of list updates return the same list. *)

val check : Trace.t -> Check.result

(** Like {!check} but treats {e every} do event as an observation —
    convenient for traces without explicit reads (every do event
    returns the updated list, so updates observing the same update set
    must also agree). *)
val check_all_events : Trace.t -> Check.result
