(** Condition 1 of the strong/weak list specifications
    (Definitions 3.2 and 3.3) — the two specifications share it
    verbatim. *)

(** Condition 1a: every returned list contains exactly the elements
    visible to the event that have been inserted but not deleted. *)
val check_content : Trace.t -> Check.result

(** Condition 1c: an insertion [Ins(a, k)] returning [w = a_0...a_{n-1}]
    has [a = a_{min(k, n-1)}]. *)
val check_insert_position : Trace.t -> Check.result

(** No returned list repeats an element (needed for irreflexivity of
    any list order containing the lists' orders; cf. Lemma 6.3). *)
val check_no_duplicates : Trace.t -> Check.result
