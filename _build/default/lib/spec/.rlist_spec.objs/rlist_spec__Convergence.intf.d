lib/spec/convergence.mli: Check Trace
