lib/spec/list_order.ml: Document Element List Op_id Option Rlist_model
