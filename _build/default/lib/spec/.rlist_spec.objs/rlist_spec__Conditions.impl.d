lib/spec/conditions.ml: Check Document Element Event Format List Op_id Rlist_model Trace
