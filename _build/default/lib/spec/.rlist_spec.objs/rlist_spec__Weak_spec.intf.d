lib/spec/weak_spec.mli: Check List_order Trace
