lib/spec/event.ml: Document Element Format Op_id Replica_id Rlist_model
