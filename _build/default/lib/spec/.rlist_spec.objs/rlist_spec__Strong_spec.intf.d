lib/spec/strong_spec.mli: Check Rlist_model Trace
