lib/spec/list_order.mli: Document Element Rlist_model
