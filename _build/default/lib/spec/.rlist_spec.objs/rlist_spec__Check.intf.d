lib/spec/check.mli: Event Format
