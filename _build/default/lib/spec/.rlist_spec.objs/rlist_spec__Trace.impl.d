lib/spec/trace.ml: Document Element Event Format Hashtbl List Op_id Replica_id Rlist_model
