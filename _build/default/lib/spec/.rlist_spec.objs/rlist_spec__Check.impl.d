lib/spec/check.ml: Event Format
