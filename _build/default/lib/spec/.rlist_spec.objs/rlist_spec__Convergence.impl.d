lib/spec/convergence.ml: Check Document Event Format Hashtbl Op_id Rlist_model Trace
