lib/spec/weak_spec.ml: Check Conditions Document Element Event Format List List_order Rlist_model Trace
