lib/spec/event.mli: Document Element Format Op_id Replica_id Rlist_model
