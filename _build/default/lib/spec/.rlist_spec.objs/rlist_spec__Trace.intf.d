lib/spec/trace.mli: Document Element Event Format Op_id Rlist_model
