lib/spec/strong_spec.ml: Check Conditions Element Event Format List List_order Rlist_model Trace
