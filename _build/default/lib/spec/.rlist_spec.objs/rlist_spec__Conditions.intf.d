lib/spec/conditions.mli: Check Trace
