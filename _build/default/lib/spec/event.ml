open Rlist_model

type operation =
  | Do_ins of Element.t * int
  | Do_del of Element.t * int
  | Do_read

type t = {
  eid : int;
  replica : Replica_id.t;
  op : operation;
  op_id : Op_id.t option;
  result : Document.t;
  visible : Op_id.Set.t;
}

let make ~eid ~replica ~op ~op_id ~result ~visible =
  (match op, op_id with
  | (Do_ins _ | Do_del _), None ->
    invalid_arg "Event.make: update event without operation identifier"
  | Do_read, Some _ -> invalid_arg "Event.make: read event with identifier"
  | (Do_ins _ | Do_del _), Some _ | Do_read, None -> ());
  { eid; replica; op; op_id; result; visible }

let is_update t = t.op_id <> None

let is_read t = t.op_id = None

let pp_operation ppf = function
  | Do_ins (e, p) -> Format.fprintf ppf "Ins(%a, %d)" Element.pp e p
  | Do_del (e, p) -> Format.fprintf ppf "Del(%a, %d)" Element.pp e p
  | Do_read -> Format.pp_print_string ppf "Read"

let pp ppf t =
  Format.fprintf ppf "#%d@%a: do(%a) -> %a" t.eid Replica_id.pp t.replica
    pp_operation t.op Document.pp t.result
