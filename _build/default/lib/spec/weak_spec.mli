(** The weak list specification (paper, Definition 3.3).

    An abstract execution satisfies the weak list specification iff
    there is an irreflexive list order [lo] containing the order of
    every returned list, transitive and total on the elements of each
    returned list.  As condition 1b forces [lo] restricted to a
    returned list [w] to coincide with [w]'s own (total) order, such an
    [lo] exists iff all returned lists are pairwise compatible
    (Definition 8.2; this is the content of Lemma 8.3).  The check is
    therefore exact: condition 1a, condition 1c, no duplicates, and
    pairwise compatibility of all returned lists. *)

val check : Trace.t -> Check.result

(** The list order itself: the union, over all returned lists, of
    their element orders (Definition 8.1). *)
val list_order : Trace.t -> List_order.t
