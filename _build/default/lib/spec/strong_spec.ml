open Rlist_model

let spec = "strong list specification"

let digraph trace =
  List_order.of_documents
    (List.map (fun e -> e.Event.result) (Trace.events trace))

let check_acyclic trace =
  match List_order.find_cycle (digraph trace) with
  | None -> Check.Satisfied
  | Some cycle ->
    Check.violated ~spec ~culprits:[]
      (Format.asprintf
         "the list order contains the cycle %a, so no total order on all \
          inserted elements exists (condition 2)"
         (Format.pp_print_list
            ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " -> ")
            Element.pp)
         cycle)

let check trace =
  Check.all
    [
      (fun () -> Conditions.check_content trace);
      (fun () -> Conditions.check_insert_position trace);
      (fun () -> Conditions.check_no_duplicates trace);
      (fun () -> check_acyclic trace);
    ]

let witness_order trace = List_order.linear_extension (digraph trace)
