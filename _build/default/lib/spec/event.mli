(** Do events: the observable behaviour of a replica towards its user.

    A [do(op, w)] event records a user invoking [op] and immediately
    receiving the updated list [w] (paper, Section 2.1.1).  An
    abstract execution is a sequence of do events plus a visibility
    relation (Definition 2.9); we record visibility extensionally as
    the set of update-operation identifiers visible to each event,
    which is how the protocols actually expose it (the replica state,
    Definition 4.5). *)

open Rlist_model

type operation =
  | Do_ins of Element.t * int  (** The user inserted this element here. *)
  | Do_del of Element.t * int  (** The user deleted this element from here. *)
  | Do_read

type t = {
  eid : int;  (** Position of the event in the history [H]. *)
  replica : Replica_id.t;  (** Replica at which the event occurred. *)
  op : operation;
  op_id : Op_id.t option;  (** Identifier of the generated update;
                               [None] for reads. *)
  result : Document.t;  (** The returned list [w]. *)
  visible : Op_id.Set.t;  (** Identifiers of the update operations
                              visible to this event.  For an update
                              event this includes its own
                              identifier. *)
}

val make :
  eid:int ->
  replica:Replica_id.t ->
  op:operation ->
  op_id:Op_id.t option ->
  result:Document.t ->
  visible:Op_id.Set.t ->
  t

val is_update : t -> bool

val is_read : t -> bool

val pp : Format.formatter -> t -> unit

val pp_operation : Format.formatter -> operation -> unit
