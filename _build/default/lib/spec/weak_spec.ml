open Rlist_model

let spec = "weak list specification"

let results trace =
  List.map (fun e -> e.Event.result) (Trace.events trace)

let check_compatibility trace =
  let docs = results trace in
  match List_order.first_incompatible docs with
  | None -> Check.Satisfied
  | Some (d1, d2, a, b) ->
    let witness_events =
      List.filter
        (fun e ->
          Document.equal e.Event.result d1 || Document.equal e.Event.result d2)
        (Trace.events trace)
    in
    Check.violated ~spec ~culprits:witness_events
      (Format.asprintf
         "returned lists %a and %a are incompatible: they order %a and %a \
          differently (no irreflexive list order exists, Lemma 8.3)"
         Document.pp d1 Document.pp d2 Element.pp a Element.pp b)

let check trace =
  Check.all
    [
      (fun () -> Conditions.check_content trace);
      (fun () -> Conditions.check_insert_position trace);
      (fun () -> Conditions.check_no_duplicates trace);
      (fun () -> check_compatibility trace);
    ]

let list_order trace = List_order.of_documents (results trace)
