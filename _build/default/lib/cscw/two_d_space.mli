(** 2D state-spaces, the data structure of the CSCW Jupiter protocol
    (paper, Section 5.1).

    A 2D state-space is a grid of states indexed by [(l, g)]: [l]
    operations along the {e local} dimension and [g] along the
    {e global} dimension have been processed.  A transition to the
    right, [right (l, g)], is the [(l+1)]-st local operation
    transformed to global level [g]; a transition upwards, [up (l, g)],
    is the [(g+1)]-st global operation transformed to local level [l].
    Each original operation is stored at the state matching its
    context; the rest of the grid is filled square by square with
    [OT], memoizing every computed transition — the grid {e is} the
    replica's dispersed state metadata, which the CSS protocol's
    single n-ary space makes compact (Proposition 6.6 and the "2n 2D
    state-spaces" comparison). *)

open Rlist_ot

type t

(** [create ~ot_counter ()] — every transformation performed by the
    grid increments [ot_counter]. *)
val create : ot_counter:int ref -> unit -> t

(** Current top-right corner of the grid: [(local, global)] counts. *)
val extent : t -> int * int

(** [add_local t op ~at_global:g0] stores a new local-dimension
    operation whose context is [(local count, g0)] and returns its
    form transformed to the current global level — the [o{L1}] of the
    paper's server processing (Section 5.2.2), or [op] itself when the
    context is current.  Advances the local count. *)
val add_local : t -> Op.t -> at_global:int -> Op.t

(** [add_global t op ~at_local:a] stores a new global-dimension
    operation whose context is [(a, global count)] and returns its
    form transformed to the current local level — the remote
    processing of Section 5.2.3.  Advances the global count. *)
val add_global : t -> Op.t -> at_local:int -> Op.t

(** Number of materialized cells (stored transitions), the metadata
    footprint of this space. *)
val size : t -> int
