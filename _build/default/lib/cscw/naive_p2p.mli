(** An {e incorrect} OT protocol — the paper's running counterexample
    (Section 8.2, Example 8.1 and Figure 8).

    The server is a pure relay: it forwards original operations in
    arrival order without transforming them.  A replica receiving a
    remote operation transforms it against all the operations it has
    executed that are concurrent with it, in its own execution order —
    the classic dOPT-style integration — using a transformation whose
    insert/insert tie keeps {e both} positions
    ({!Rlist_ot.Transform.xform_no_priority}).

    Because concurrent operations are transformed in different orders
    at different replicas and the tie-break is not convergent, the
    protocol "satisfies neither the convergence properties nor the
    weak list specification" (Example 8.1); the test suite and the
    benchmark harness reproduce Figure 8's diverging lists with it. *)

open Rlist_ot

type c2s = {
  op : Op.t;
  clock : int array;  (** Vector clock: per-client operation counts
                          known at generation (index 0 unused). *)
}

type s2c = {
  op : Op.t;
  clock : int array;
  origin : int;
}

include
  Rlist_sim.Protocol_intf.PROTOCOL with type c2s := c2s and type s2c := s2c

(** Pretty-printed execution order of a client (operation forms as
    executed), for figure rendering. *)
val client_log : client -> Op.t list
