lib/cscw/naive_p2p.mli: Op Rlist_ot Rlist_sim
