lib/cscw/naive_p2p.ml: Array Document Element Format Intent List Op Op_id Rlist_model Rlist_ot Rlist_sim Rlist_spec Transform
