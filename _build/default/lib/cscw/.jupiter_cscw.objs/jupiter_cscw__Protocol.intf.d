lib/cscw/protocol.mli: Op Rlist_ot Rlist_sim
