lib/cscw/two_d_space.ml: Hashtbl Op Printf Rlist_ot Transform
