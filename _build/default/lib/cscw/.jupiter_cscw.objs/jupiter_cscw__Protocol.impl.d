lib/cscw/protocol.ml: Array Document Element Format Intent List Op Op_id Rlist_model Rlist_ot Rlist_sim Rlist_spec Two_d_space
