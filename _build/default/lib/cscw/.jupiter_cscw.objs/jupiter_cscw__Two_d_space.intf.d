lib/cscw/two_d_space.mli: Op Rlist_ot
