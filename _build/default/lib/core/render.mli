(** Rendering n-ary ordered state-spaces, for the figure
    reproductions (paper, Figures 3, 4, 6, 7b).

    {!to_dot} emits Graphviz DOT; {!to_ascii} a levelled text listing
    (states grouped by the number of processed operations, transitions
    left to right in their total order). *)

open Rlist_model

(** [to_dot t ~initial ~name] renders the space.  Node labels show the
    state (operation set) and the document at it; edge labels show the
    transition's operation form, with child order encoded by edge
    position (Graphviz [ordering=out]). *)
val to_dot : State_space.t -> initial:Document.t -> name:string -> string

val to_ascii : State_space.t -> initial:Document.t -> string

(** Render a replica's behaviour — its path through the state-space
    (thick lines of the paper's Figure 4) — as one state per line. *)
val path_to_ascii :
  State_space.t -> initial:Document.t -> State_space.state list -> string
