(** The CSS protocol with the server reduced to a pure sequencer — a
    step toward the paper's first future-work direction ("extending
    the CSS protocol to a distributed setting, by integrating the
    compact n-ary ordered state-space with a distributed scheme to
    totally order operations").

    The enabler is a defining feature of the CSS protocol: the server
    redirects {e original} operations (Section 6.2, footnote 7), so
    unlike the CSCW server it never needs to transform anything.  All
    the center must provide is a total order; here it is a stateless
    sequencer holding no document, no state-space, and performing zero
    transformations — any total-order broadcast service could replace
    it.  Clients are {e bit-for-bit} the clients of {!Protocol}.

    Because the center is not a replica, convergence is judged over
    the clients only ([server_is_replica = false]). *)

include
  Rlist_sim.Protocol_intf.PROTOCOL
    with type client = Protocol.client
     and type c2s = Protocol.c2s
     and type s2c = Protocol.s2c

val client_space : client -> State_space.t
