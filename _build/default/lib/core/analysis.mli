(** Structural analysis of n-ary ordered state-spaces.

    The weak-list-specification proof (paper, Section 8.2) rests on
    properties of states and paths of the single compact state-space:
    unique lowest common ancestors (Lemma 8.4), simple paths
    (Lemma 6.3), disjoint paths from the LCA (Lemma 8.5), and pairwise
    compatibility of all states (Theorem 8.7).  This module computes
    the objects these lemmas talk about and checks the lemmas on
    concrete spaces — the executable counterpart of the paper's
    Figures 9 and 10. *)

open Rlist_model

type state = State_space.state

(** The document at every state, obtained by replaying transition
    forms from the initial state.  Every path to a state yields the
    same document (a consequence of CP1, Definition 4.4); if two paths
    disagree the space is corrupt and the function raises
    [Invalid_argument]. *)
val documents :
  State_space.t -> initial:Document.t -> (state * Document.t) list

(** [document_at t ~initial s] is the document at state [s].
    @raise Invalid_argument if [s] is absent. *)
val document_at : State_space.t -> initial:Document.t -> state -> Document.t

(** All simple paths from one state to another, as transition lists;
    raises [Invalid_argument] if more than [limit] paths exist
    (default 10_000 — path counts are exponential in pathological
    spaces). *)
val all_paths :
  ?limit:int ->
  State_space.t ->
  src:state ->
  dst:state ->
  State_space.transition list list

(** The {e lowest} common ancestors of two states: common ancestors
    from which no strictly lower common ancestor is reachable.
    Lemma 8.4 asserts the result is a singleton for spaces built by
    the CSS protocol. *)
val lowest_common_ancestors : State_space.t -> state -> state -> state list

(** Per-lemma structural checks.  Each returns [Ok ()] or a
    description of the first violation found. *)

(** Lemma 6.1: every state has at most [nclients] child states. *)
val check_nary : State_space.t -> nclients:int -> (unit, string) result

(** Lemma 6.3: no path repeats an (original) operation. *)
val check_simple_paths : State_space.t -> (unit, string) result

(** Lemma 8.4: every pair of states has a unique LCA. *)
val check_unique_lca : State_space.t -> (unit, string) result

(** Lemma 8.5: the operation sets along paths from the LCA to the two
    states are disjoint (checked for {e all} simple paths). *)
val check_disjoint_paths : State_space.t -> (unit, string) result

(** Theorem 8.7: the documents at every pair of states are compatible
    (Definition 8.2). *)
val check_pairwise_compatibility :
  State_space.t -> initial:Document.t -> (unit, string) result

(** All of the above in sequence. *)
val check_all :
  State_space.t -> nclients:int -> initial:Document.t -> (unit, string) result

(** Structural metrics of a state-space. *)
type stats = {
  states : int;
  transitions : int;
  depth : int;  (** Operations in the final state (longest path). *)
  max_branching : int;  (** Widest state (bounded by n, Lemma 6.1). *)
  nop_forms : int;  (** Transitions whose form degenerated to [Nop]
                        (concurrent deletions of the same element). *)
  width_per_level : (int * int) list;  (** States per operation count. *)
}

val stats : State_space.t -> stats

val pp_stats : Format.formatter -> stats -> unit
