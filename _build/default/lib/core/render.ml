open Rlist_model

let state_label state =
  if Op_id.Set.is_empty state then "0"
  else
    String.concat ""
      (List.map
         (fun id -> Format.asprintf "%a " Op_id.pp id)
         (Op_id.Set.canonical state))
    |> String.trim

let doc_table t ~initial =
  let docs = Analysis.documents t ~initial in
  fun state ->
    match List.find_opt (fun (s, _) -> Op_id.Set.equal s state) docs with
    | Some (_, doc) -> Document.to_string doc
    | None -> "?"

let to_dot t ~initial ~name =
  let buffer = Buffer.create 1024 in
  let doc_of = doc_table t ~initial in
  let node_id state = Printf.sprintf "\"%s\"" (state_label state) in
  Buffer.add_string buffer (Printf.sprintf "digraph %S {\n" name);
  Buffer.add_string buffer "  rankdir=TB;\n  ordering=out;\n";
  Buffer.add_string buffer "  node [shape=box, fontname=\"monospace\"];\n";
  List.iter
    (fun state ->
      Buffer.add_string buffer
        (Printf.sprintf "  %s [label=\"{%s}\\n%S\"];\n" (node_id state)
           (state_label state) (doc_of state)))
    (State_space.states t);
  List.iter
    (fun state ->
      List.iter
        (fun tr ->
          Buffer.add_string buffer
            (Printf.sprintf "  %s -> %s [label=%S];\n" (node_id state)
               (node_id tr.State_space.target)
               (Rlist_ot.Op.to_string tr.State_space.form)))
        (State_space.transitions t state))
    (State_space.states t);
  Buffer.add_string buffer "}\n";
  Buffer.contents buffer

let to_ascii t ~initial =
  let buffer = Buffer.create 1024 in
  let doc_of = doc_table t ~initial in
  let by_level =
    List.sort
      (fun s1 s2 ->
        match
          Int.compare (Op_id.Set.cardinal s1) (Op_id.Set.cardinal s2)
        with
        | 0 -> Op_id.Set.compare s1 s2
        | c -> c)
      (State_space.states t)
  in
  List.iter
    (fun state ->
      Buffer.add_string buffer
        (Printf.sprintf "{%s} %S\n" (state_label state) (doc_of state));
      List.iter
        (fun tr ->
          Buffer.add_string buffer
            (Printf.sprintf "  --%s--> {%s}\n"
               (Rlist_ot.Op.to_string tr.State_space.form)
               (state_label tr.State_space.target)))
        (State_space.transitions t state))
    by_level;
  Buffer.contents buffer

let path_to_ascii t ~initial path =
  let doc_of = doc_table t ~initial in
  String.concat "\n"
    (List.map
       (fun state ->
         Printf.sprintf "{%s} %S" (state_label state) (doc_of state))
       path)
