lib/core/snapshot.ml: Buffer Char Document Element Format Fun List Op Op_id Printf Protocol Rlist_model Rlist_ot State_space String
