lib/core/render.ml: Analysis Buffer Document Format Int List Op_id Printf Rlist_model Rlist_ot State_space String
