lib/core/analysis.ml: Document Format Hashtbl List Op Op_id Option Queue Result Rlist_model Rlist_ot State_space
