lib/core/state_space.ml: Context Format Int List Op Op_id Option Order_key Rlist_model Rlist_ot Transform
