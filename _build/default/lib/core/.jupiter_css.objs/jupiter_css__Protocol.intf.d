lib/core/protocol.mli: Context Op Rlist_model Rlist_ot Rlist_sim State_space
