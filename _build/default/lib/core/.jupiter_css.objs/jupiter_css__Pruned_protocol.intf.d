lib/core/pruned_protocol.mli: Context Op Rlist_ot Rlist_sim State_space
