lib/core/order_key.ml: Format Int
