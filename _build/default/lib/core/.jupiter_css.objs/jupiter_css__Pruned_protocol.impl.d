lib/core/pruned_protocol.ml: Array Context Document Format Hashtbl List Op Op_id Order_key Printf Rlist_model Rlist_ot Rlist_sim State_space
