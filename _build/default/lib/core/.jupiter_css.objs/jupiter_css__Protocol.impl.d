lib/core/protocol.ml: Context Document Format List Op Op_id Order_key Rlist_model Rlist_ot Rlist_sim State_space
