lib/core/distributed_protocol.ml: Array Context Document Format Int List Op Op_id Order_key Rlist_model Rlist_ot Rlist_sim State_space
