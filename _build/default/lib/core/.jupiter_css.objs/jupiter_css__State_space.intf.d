lib/core/state_space.mli: Context Format Op Op_id Order_key Rlist_model Rlist_ot
