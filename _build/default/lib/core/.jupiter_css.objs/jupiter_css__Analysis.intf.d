lib/core/analysis.mli: Document Format Rlist_model State_space
