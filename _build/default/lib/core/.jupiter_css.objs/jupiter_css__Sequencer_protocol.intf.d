lib/core/sequencer_protocol.mli: Protocol Rlist_sim State_space
