lib/core/order_key.mli: Format
