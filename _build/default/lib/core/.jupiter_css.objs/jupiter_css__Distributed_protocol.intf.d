lib/core/distributed_protocol.mli: Context Op Rlist_ot Rlist_sim State_space
