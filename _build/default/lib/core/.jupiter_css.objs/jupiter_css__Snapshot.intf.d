lib/core/snapshot.mli: Protocol
