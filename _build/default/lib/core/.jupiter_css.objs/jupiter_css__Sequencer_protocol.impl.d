lib/core/sequencer_protocol.ml: Document List Op_id Protocol Rlist_model Rlist_ot
