lib/core/render.mli: Document Rlist_model State_space
