(** The fully distributed CSS protocol — the paper's first future-work
    direction realized: the compact n-ary ordered state-space combined
    with a decentralized total-ordering scheme, with no server at all.

    Peers broadcast their original operations (with context) stamped
    with Lamport timestamps; the total order is [(timestamp, peer)],
    lexicographic — the TIBOT-style alternative the paper cites.  A
    remote operation is integrated into the state-space only once it
    is {e stable}: the peer has heard a clock value ≥ the operation's
    timestamp from every other peer, so nothing that would order
    before it can still arrive (clock announcements are broadcast in
    reaction to every operation receipt).  Own operations are executed
    optimistically at generation, exactly as in the client/server CSS
    protocol — their total-order position is already known, because
    the generator stamps the timestamp itself.

    Remote operations integrate strictly in total order, which also
    guarantees their contexts are present (a context operation always
    carries a smaller timestamp, and pairwise FIFO channels deliver it
    first). *)

open Rlist_ot

type message =
  | Op_msg of {
      op : Op.t;  (** Original operation. *)
      ctx : Context.t;
      ts : int;  (** Lamport timestamp. *)
    }
  | Clock of int
      (** Clock announcement, driving stability at the other peers. *)

include Rlist_sim.P2p_protocol_intf.P2P_PROTOCOL with type message := message

val space : peer -> State_space.t
