(** Ordering keys for transitions of the n-ary ordered state-space.

    The child transitions of a state are totally ordered "according to
    the total order among operations established by the server"
    (paper, Section 6.1).  A replica knows the serial number of every
    operation the server has broadcast; its own not-yet-acknowledged
    operations are ordered after all serialized ones (the server will
    necessarily assign them later serials) and among themselves by
    generation order.  FIFO channels make this local view consistent
    with the eventual global total order. *)

type t =
  | Serialized of int  (** Server serial number. *)
  | Pending of int  (** Own unacknowledged operation, by generation
                        sequence number. *)

val compare : t -> t -> int

val pp : Format.formatter -> t -> unit
