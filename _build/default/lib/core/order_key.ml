type t =
  | Serialized of int
  | Pending of int

let compare a b =
  match a, b with
  | Serialized x, Serialized y -> Int.compare x y
  | Pending x, Pending y -> Int.compare x y
  | Serialized _, Pending _ -> -1
  | Pending _, Serialized _ -> 1

let pp ppf = function
  | Serialized s -> Format.fprintf ppf "#%d" s
  | Pending g -> Format.fprintf ppf "pending.%d" g
