(** RGA as a client/server protocol, pluggable into the simulation
    engine alongside the Jupiter protocols.

    The server holds an RGA replica and relays operations in arrival
    order — total-order (hence causal) delivery over the FIFO
    channels, the setting in which {!Rga_list}'s integration is
    correct.  No transformation ever happens; convergence comes from
    the commutativity of integration (the CRDT approach, paper
    Section 9).  The originator receives a pure acknowledgement to
    keep message schedules aligned with the Jupiter protocols. *)

open Rlist_model

type rga_op =
  | Rins of {
      elt : Element.t;
      after : Op_id.t option;  (** Anchor element, [None] for head. *)
      ts : Rga_list.timestamp;
    }
  | Rdel of {
      id : Op_id.t;  (** The delete operation's own identity. *)
      target : Op_id.t;  (** Element to delete. *)
      ts : Rga_list.timestamp;
    }

val op_id : rga_op -> Op_id.t

type c2s = { rop : rga_op }

type s2c =
  | Forward of rga_op
  | Ack of Rga_list.timestamp

include
  Rlist_sim.Protocol_intf.PROTOCOL with type c2s := c2s and type s2c := s2c

(** Tombstone count at a client, for the metadata experiments. *)
val client_tombstones : client -> int
