(** The RGA (Replicated Growable Array) sequence CRDT (Roh et al.
    2011), the baseline protocol of the paper's related work: Attiya
    et al. proved that a variant of RGA satisfies the {e strong} list
    specification, which Jupiter does not (paper, Sections 8.1 and 9).

    The state is a linked sequence of timestamped nodes; deletions
    leave tombstones.  A remote insertion is anchored at the node
    after which it was generated and placed among the anchor's
    successors by skipping nodes with larger Lamport timestamps —
    correct under causal delivery because every node inside a skipped
    subtree carries a timestamp larger than its root's. *)

open Rlist_model

(** Lamport timestamp: (clock, client) — totally ordered, causality-
    compatible. *)
type timestamp = int * int

val compare_timestamp : timestamp -> timestamp -> int

type t

val create : initial:Document.t -> t

(** The visible document (tombstones excluded). *)
val document : t -> Document.t

(** Total node count including tombstones — the CRDT's metadata
    footprint. *)
val size : t -> int

val tombstones : t -> int

(** Lamport clock bump on message receipt. *)
val observe_timestamp : t -> timestamp -> unit

(** Fresh timestamp for a local operation. *)
val next_timestamp : t -> client:int -> timestamp

(** [anchor_of t ~pos] is the identity of the visible element to the
    left of visible position [pos] ([None] at the head) — the insert
    anchor. *)
val anchor_of : t -> pos:int -> Op_id.t option

(** [insert t ~elt ~after ~ts] integrates an insertion (local or
    remote).  @raise Invalid_argument if the anchor is unknown or the
    element already present. *)
val insert : t -> elt:Element.t -> after:Op_id.t option -> ts:timestamp -> unit

(** [delete t ~target] marks the element as deleted (idempotent).
    @raise Invalid_argument if the element was never inserted. *)
val delete : t -> target:Op_id.t -> unit
