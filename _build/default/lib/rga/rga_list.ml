open Rlist_model

type timestamp = int * int

let compare_timestamp (c1, i1) (c2, i2) =
  match Int.compare c1 c2 with
  | 0 -> Int.compare i1 i2
  | c -> c

type node = {
  elt : Element.t;
  ts : timestamp;
  mutable tombstone : bool;
}

type t = {
  mutable nodes : node list;  (* RGA order, tombstones included *)
  mutable clock : int;
  index : node Op_id.Table.t;  (* by element identity *)
}

let create ~initial =
  let index = Op_id.Table.create 64 in
  let nodes =
    List.map
      (fun elt ->
        let node = { elt; ts = 0, 0; tombstone = false } in
        Op_id.Table.replace index elt.Element.id node;
        node)
      (Document.elements initial)
  in
  { nodes; clock = 0; index }

let document t =
  Document.of_elements
    (List.filter_map
       (fun node -> if node.tombstone then None else Some node.elt)
       t.nodes)

let size t = List.length t.nodes

let tombstones t =
  List.length (List.filter (fun node -> node.tombstone) t.nodes)

let observe_timestamp t (clock, _) = t.clock <- max t.clock clock

let next_timestamp t ~client =
  t.clock <- t.clock + 1;
  t.clock, client

let anchor_of t ~pos =
  if pos = 0 then None
  else begin
    let rec go visible = function
      | [] -> invalid_arg "Rga_list.anchor_of: position out of bounds"
      | node :: rest ->
        if node.tombstone then go visible rest
        else if visible = pos - 1 then Some node.elt.Element.id
        else go (visible + 1) rest
    in
    go 0 t.nodes
  end

let insert t ~elt ~after ~ts =
  if Op_id.Table.mem t.index elt.Element.id then
    invalid_arg
      (Format.asprintf "Rga_list.insert: element %a already present" Element.pp
         elt);
  (match after with
  | Some anchor_id when not (Op_id.Table.mem t.index anchor_id) ->
    invalid_arg
      (Format.asprintf "Rga_list.insert: unknown anchor %a" Op_id.pp anchor_id)
  | Some _ | None -> ());
  observe_timestamp t ts;
  let fresh = { elt; ts; tombstone = false } in
  Op_id.Table.replace t.index elt.Element.id fresh;
  (* Walk to the anchor, then skip successors with larger timestamps:
     concurrent same-anchor inserts end up ordered by descending
     timestamp, and causally later subtrees carry larger Lamport
     clocks, so they are skipped as units. *)
  let rec skip = function
    | node :: rest when compare_timestamp node.ts ts > 0 -> node :: skip rest
    | tail -> fresh :: tail
  in
  match after with
  | None -> t.nodes <- skip t.nodes
  | Some anchor_id ->
    let rec place = function
      | [] -> assert false (* anchor is in the index, hence in the list *)
      | node :: rest ->
        if Op_id.equal node.elt.Element.id anchor_id then node :: skip rest
        else node :: place rest
    in
    t.nodes <- place t.nodes

let delete t ~target =
  match Op_id.Table.find_opt t.index target with
  | None ->
    invalid_arg
      (Format.asprintf "Rga_list.delete: unknown element %a" Op_id.pp target)
  | Some node -> node.tombstone <- true
