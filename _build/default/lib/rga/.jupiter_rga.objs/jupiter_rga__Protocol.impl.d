lib/rga/protocol.ml: Document Element Format Intent List Op_id Rga_list Rlist_model Rlist_sim Rlist_spec
