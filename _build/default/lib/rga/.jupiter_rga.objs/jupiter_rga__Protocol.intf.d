lib/rga/protocol.mli: Element Op_id Rga_list Rlist_model Rlist_sim
