lib/rga/rga_list.ml: Document Element Format Int List Op_id Rlist_model
