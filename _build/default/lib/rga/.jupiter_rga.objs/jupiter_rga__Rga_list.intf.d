lib/rga/rga_list.mli: Document Element Op_id Rlist_model
