(* Project lint: a small textual scanner enforcing comparison hygiene.

   Repo-wide rules (every .ml under the given roots):
     obj-magic   [Obj.magic] is forbidden.
     sys-time    [Sys.time] is forbidden: it measures CPU seconds and
                 silently masquerades as a wall clock.  Use the
                 metrics clock ([Rlist_obs.Metrics.now_ns], with an
                 installed monotonic clock) or [Unix.gettimeofday].

   Rules for the protocol libraries (lib/core, lib/ot, lib/cscw),
   where operation and state types carry semantically irrelevant
   fields and must only be compared with their dedicated functions:
     poly-eq     [e = Ctor] / [e <> Ctor] structural comparison
                 against a constructor (match instead).
     poly-cmp    bare polymorphic [compare] (use the type's own
                 compare; allowed in files defining [let compare]).
     poly-hash   [Hashtbl.hash] (structural, follows the same
                 irrelevant fields).

   Comments and string literals are stripped before matching, with
   line structure preserved.  A raw line containing "lint: allow" is
   skipped.  Exit status 1 when any finding is reported. *)

let strict_dirs = [ "lib/core"; "lib/ot"; "lib/cscw" ]

type finding = {
  f_file : string;
  f_line : int;
  f_rule : string;
  f_msg : string;
}

let findings : finding list ref = ref []

let report ~file ~line ~rule msg =
  findings := { f_file = file; f_line = line; f_rule = rule; f_msg = msg }
             :: !findings

(* Replace comments (nested) and string literals with spaces,
   preserving newlines so line numbers survive. *)
let strip source =
  let n = String.length source in
  let out = Bytes.of_string source in
  let blank i = if Bytes.get out i <> '\n' then Bytes.set out i ' ' in
  let rec skip_string i =
    (* [i] points one past the opening quote. *)
    if i >= n then i
    else
      match source.[i] with
      | '"' ->
        blank i;
        i + 1
      | '\\' when i + 1 < n ->
        blank i;
        blank (i + 1);
        skip_string (i + 2)
      | _ ->
        blank i;
        skip_string (i + 1)
  in
  let rec skip_comment i depth =
    if i >= n then i
    else if i + 1 < n && source.[i] = '(' && source.[i + 1] = '*' then begin
      blank i;
      blank (i + 1);
      skip_comment (i + 2) (depth + 1)
    end
    else if i + 1 < n && source.[i] = '*' && source.[i + 1] = ')' then begin
      blank i;
      blank (i + 1);
      if depth = 1 then i + 2 else skip_comment (i + 2) (depth - 1)
    end
    else begin
      blank i;
      skip_comment (i + 1) depth
    end
  in
  let rec go i =
    if i >= n then ()
    else if i + 1 < n && source.[i] = '(' && source.[i + 1] = '*' then
      go (skip_comment i 0)
    else if source.[i] = '"' then begin
      blank i;
      go (skip_string (i + 1))
    end
    else if
      (* A char literal like '"' or 'a'; skip it so an unbalanced
         quote inside does not open a "string". *)
      source.[i] = '\'' && i + 2 < n && source.[i + 2] = '\''
    then go (i + 3)
    else if
      source.[i] = '\'' && i + 3 < n && source.[i + 1] = '\\'
      && source.[i + 3] = '\''
    then go (i + 4)
    else go (i + 1)
  in
  go 0;
  Bytes.to_string out

let is_word_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '\'' -> true
  | _ -> false

(* Does [re]-free substring search find [needle] as a whole token? *)
let find_token line needle =
  let nl = String.length line and nn = String.length needle in
  let rec go i =
    if i + nn > nl then None
    else if
      String.sub line i nn = needle
      && (i = 0 || not (is_word_char line.[i - 1] || line.[i - 1] = '.'))
      && (i + nn >= nl || not (is_word_char line.[i + nn]))
    then Some i
    else go (i + 1)
  in
  go 0

let contains line needle =
  let nl = String.length line and nn = String.length needle in
  let rec go i =
    if i + nn > nl then false
    else String.sub line i nn = needle || go (i + 1)
  in
  go 0

(* Position of the [k]-th '=' that is a standalone operator (not part
   of ==, =>, <=, >=, <>, :=, !=). *)
let equals_positions line =
  let n = String.length line in
  let rec go i acc =
    if i >= n then List.rev acc
    else if
      line.[i] = '='
      && (i = 0 || not (List.mem line.[i - 1] [ '<'; '>'; ':'; '!'; '=' ]))
      && (i + 1 >= n || line.[i + 1] <> '=')
    then go (i + 1) (i :: acc)
    else go (i + 1) acc
  in
  go 0 []

(* The operand right of position [i] starts with an uppercase
   constructor? *)
let rhs_constructor line i =
  let n = String.length line in
  let rec skip_ws j = if j < n && line.[j] = ' ' then skip_ws (j + 1) else j in
  let j = skip_ws i in
  j < n
  && (match line.[j] with 'A' .. 'Z' -> true | _ -> false)
  (* [= Some x] compares; [= Some.f] would be a module path. *)
  && not (contains (String.sub line j (min 8 (n - j))) ".")

let in_strict_dir file =
  List.exists
    (fun d ->
      String.length file >= String.length d
      && String.sub file 0 (String.length d) = d)
    strict_dirs

let lint_file file =
  let ic = open_in_bin file in
  let len = in_channel_length ic in
  let source = really_input_string ic len in
  close_in ic;
  let raw_lines = String.split_on_char '\n' source in
  let lines = String.split_on_char '\n' (strip source) in
  let defines_compare = ref false in
  List.iteri
    (fun idx (raw, line) ->
      let lineno = idx + 1 in
      let allowed = contains raw "lint: allow" in
      if not allowed then begin
        (* Repo-wide bans. *)
        if contains line "Obj.magic" then
          report ~file ~line:lineno ~rule:"obj-magic" "Obj.magic is forbidden";
        if contains line "Sys.time" then
          report ~file ~line:lineno ~rule:"sys-time"
            "Sys.time measures CPU seconds; use the metrics clock or \
             Unix.gettimeofday";
        if in_strict_dir file && Filename.check_suffix file ".ml" then begin
          (* Structural comparison against a constructor. *)
          (match find_token line "<>" with
          | Some i when rhs_constructor line (i + 2) ->
            report ~file ~line:lineno ~rule:"poly-eq"
              "polymorphic <> against a constructor; match instead"
          | _ -> ());
          let eqs = equals_positions line in
          let trimmed = String.trim line in
          let starts_with p =
            String.length trimmed >= String.length p
            && String.sub trimmed 0 (String.length p) = p
          in
          List.iteri
            (fun k i ->
              if rhs_constructor line (i + 1) then
                (* A comparison, not a binding: either it sits in a
                   condition, or it is a second [=] on a let line —
                   and never inside an open record literal. *)
                let prefix = String.sub line 0 i in
                let braces =
                  String.fold_left
                    (fun acc c ->
                      match c with
                      | '{' -> acc + 1
                      | '}' -> acc - 1
                      | _ -> acc)
                    0 prefix
                in
                let conditional =
                  contains prefix "if " || contains prefix "when "
                  || contains prefix "&&" || contains prefix "||"
                in
                let second_eq_of_let =
                  k > 0 && (starts_with "let " || starts_with "and ")
                in
                if braces <= 0 && (conditional || second_eq_of_let) then
                  report ~file ~line:lineno ~rule:"poly-eq"
                    "polymorphic = against a constructor; match instead")
            eqs;
          (* Bare polymorphic compare / Hashtbl.hash. *)
          if contains line "let compare" then defines_compare := true;
          (match find_token line "compare" with
          | Some _
            when (not !defines_compare)
                 && not (contains line "let compare") ->
            report ~file ~line:lineno ~rule:"poly-cmp"
              "bare polymorphic compare; use the type's compare"
          | _ -> ());
          if contains line "Hashtbl.hash" then
            report ~file ~line:lineno ~rule:"poly-hash"
              "Hashtbl.hash is structural; hash the relevant fields"
        end
      end)
    (List.combine raw_lines lines)

let rec walk path =
  if Sys.is_directory path then
    Array.iter
      (fun entry ->
        if entry <> "_build" then walk (Filename.concat path entry))
      (Sys.readdir path)
  else if Filename.check_suffix path ".ml" then lint_file path

let () =
  let roots =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as roots) -> roots
    | _ -> [ "lib"; "bin"; "test"; "bench"; "examples" ]
  in
  List.iter walk roots;
  let all = List.rev !findings in
  List.iter
    (fun f ->
      Printf.printf "%s:%d: [%s] %s\n" f.f_file f.f_line f.f_rule f.f_msg)
    all;
  match all with
  | [] -> print_endline "lint: clean"
  | fs ->
    Printf.printf "lint: %d finding(s)\n" (List.length fs);
    exit 1
