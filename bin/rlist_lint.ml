(* Project lint CLI — a thin front end over the [Rlist_lint] analyzer
   (lib/lint).  The analysis itself (rules, scopes, [[@lint.allow]]
   suppressions, the typed interprocedural passes) lives in the
   library; this file only parses arguments, renders the report, and
   turns finding families into exit-code bits:

     bit 1   hygiene            (poly-eq/poly-cmp/poly-hash/obj-magic/
                                 sys-time/parse-error/unused-allow)
     bit 2   determinism        (rand-global/hashtbl-iter/wall-clock/
                                 float-format/print-direct/det-reach)
     bit 4   exception safety   (exn-partial)
     bit 8   interface          (missing-mli)
     bit 16  domain safety      (module-mutable)

   Exit 0 is clean, 64 is a usage error.  `--list-rules` documents the
   registry; `--rules a,b` restricts a run; `--baseline f` accepts the
   findings recorded in [f] (one `path:rule` per line); `--json` emits
   the machine-readable report for CI artifacts.

   The typed layer (`--typed`) loads the [.cmt] artifacts dune saved
   under `--cmt-root` (default: `_build/default` when it exists),
   keeps the units whose sources lie under the given roots, and runs
   the determinism-reachability and domain-safety passes on top of the
   Parsetree pass; findings double-reported by both layers are deduped
   in favor of the typed one (which carries the witness chain).
   `--callgraph dot|json FILE`, `--domain-report FILE` and
   `--escape-report FILE` write the CI artifacts; `--entry PAT`
   (repeatable) overrides the entry-point patterns. *)

open Rlist_lint

let default_roots = [ "lib"; "bin"; "test"; "bench"; "examples" ]

let usage () =
  prerr_endline
    "usage: rlist_lint [--json] [--rules r1,r2] [--baseline FILE] \
     [--list-rules]\n\
    \                  [--typed] [--cmt-root DIR] [--entry PAT]\n\
    \                  [--callgraph dot|json FILE] [--domain-report FILE]\n\
    \                  [--escape-report FILE] [roots...]";
  exit 64

let list_rules () =
  List.iter
    (fun (r : Rules.t) ->
      Printf.printf "%-14s %-16s %s%s\n" r.name
        (Rules.family_name r.family)
        (if r.typed then "[typed] " else "")
        r.summary)
    Rules.all;
  exit 0

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

let () =
  let json = ref false in
  let rules = ref None in
  let baseline = ref None in
  let typed = ref false in
  let cmt_root = ref None in
  let entry_pats = ref [] in
  let callgraph_out = ref None in
  let domain_out = ref None in
  let escape_out = ref None in
  let roots = ref [] in
  let rec parse = function
    | [] -> ()
    | "--json" :: rest ->
      json := true;
      parse rest
    | "--list-rules" :: _ -> list_rules ()
    | "--typed" :: rest ->
      typed := true;
      parse rest
    | "--cmt-root" :: dir :: rest ->
      cmt_root := Some dir;
      parse rest
    | "--entry" :: pat :: rest ->
      entry_pats := pat :: !entry_pats;
      parse rest
    | "--callgraph" :: fmt :: file :: rest
      when String.equal fmt "dot" || String.equal fmt "json" ->
      callgraph_out := Some (fmt, file);
      parse rest
    | "--domain-report" :: file :: rest ->
      domain_out := Some file;
      parse rest
    | "--escape-report" :: file :: rest ->
      escape_out := Some file;
      parse rest
    | "--rules" :: spec :: rest ->
      let names =
        String.split_on_char ',' spec
        |> List.map String.trim
        |> List.filter (fun s -> not (String.equal s ""))
      in
      List.iter
        (fun n ->
          if Option.is_none (Rules.find n) then begin
            Printf.eprintf "rlist_lint: unknown rule %S (try --list-rules)\n"
              n;
            exit 64
          end)
        names;
      rules := Some names;
      parse rest
    | "--baseline" :: file :: rest ->
      if not (Sys.file_exists file) then begin
        Printf.eprintf "rlist_lint: baseline file %S not found\n" file;
        exit 64
      end;
      baseline := Some (Lint.load_baseline file);
      parse rest
    | ("--help" | "-h") :: _
    | ( "--rules" | "--baseline" | "--cmt-root" | "--entry" | "--domain-report"
      | "--escape-report" )
      :: [] ->
      usage ()
    | "--callgraph" :: _ -> usage ()
    | arg :: _ when String.length arg > 0 && arg.[0] = '-' ->
      Printf.eprintf "rlist_lint: unknown option %s\n" arg;
      usage ()
    | root :: rest ->
      roots := root :: !roots;
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let roots = match List.rev !roots with [] -> default_roots | rs -> rs in
  List.iter
    (fun r ->
      if not (Sys.file_exists r) then begin
        Printf.eprintf "rlist_lint: no such root %S\n" r;
        exit 64
      end)
    roots;
  let findings = Lint.run ?rules:!rules roots in
  let findings =
    if not !typed then findings
    else begin
      let cmt_root =
        match !cmt_root with
        | Some d -> d
        | None -> if Sys.file_exists "_build/default" then "_build/default" else "."
      in
      let corpus = Cmt_loader.load_dir ~roots cmt_root in
      (match Cmt_loader.units corpus with
      | [] ->
        Printf.eprintf
          "rlist_lint: no .cmt artifacts under %S for roots %s; build first \
           (dune build) or pass --cmt-root\n"
          cmt_root (String.concat "," roots);
        exit 64
      | _ -> ());
      List.iter
        (fun e -> Printf.eprintf "rlist_lint: warning: %s\n" e)
        (Cmt_loader.errors corpus);
      let g = Callgraph.build corpus in
      let entries =
        match List.rev !entry_pats with
        | [] -> Typed.default_entries
        | pats -> pats
      in
      let reach = Typed.det_reach ~entries g in
      let muts = Typed.domain_scan corpus in
      let esc = Escape.analyze ~reached:reach.r_reached corpus in
      (match !callgraph_out with
      | Some ("dot", file) ->
        write_file file
          (Callgraph.dot ~entries:reach.r_entries ~reached:reach.r_reached g)
      | Some (_, file) ->
        write_file file
          (Callgraph.json ~entries:reach.r_entries ~reached:reach.r_reached g)
      | None -> ());
      (match !domain_out with
      | Some file ->
        write_file file
          (Typed.domain_report_json
             ~escaping_unsuppressed:(Escape.unsuppressed_escaping esc)
             muts)
      | None -> ());
      (match !escape_out with
      | Some file -> write_file file (Escape.report_json esc)
      | None -> ());
      let typed_findings =
        reach.r_findings @ Typed.domain_findings muts @ Escape.findings esc
      in
      let selected =
        match !rules with
        | None -> typed_findings
        | Some l ->
          List.filter (fun (f : Finding.t) -> List.mem f.rule l) typed_findings
      in
      Lint.dedupe (List.sort Finding.compare (findings @ selected))
    end
  in
  let findings =
    match !baseline with
    | None -> findings
    | Some b -> Lint.apply_baseline b findings
  in
  if !json then print_endline (Lint.report_json findings)
  else begin
    List.iter
      (fun f -> Format.printf "%a@." Finding.pp f)
      findings;
    match findings with
    | [] -> print_endline "lint: clean"
    | fs -> Printf.printf "lint: %d finding(s)\n" (List.length fs)
  end;
  exit (Lint.exit_code findings)
