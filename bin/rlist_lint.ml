(* Project lint CLI — a thin front end over the [Rlist_lint] AST
   analyzer (lib/lint).  The analysis itself (rules, scopes,
   [[@lint.allow]] suppressions) lives in the library; this file only
   parses arguments, renders the report, and turns finding families
   into exit-code bits:

     bit 1  hygiene            (poly-eq/poly-cmp/poly-hash/obj-magic/
                                sys-time/parse-error)
     bit 2  determinism        (rand-global/hashtbl-iter/wall-clock/
                                float-format)
     bit 4  exception safety   (exn-partial)
     bit 8  interface          (missing-mli)

   Exit 0 is clean, 64 is a usage error.  `--list-rules` documents the
   registry; `--rules a,b` restricts a run; `--baseline f` accepts the
   findings recorded in [f] (one `path:rule` per line); `--json` emits
   the machine-readable report for CI artifacts. *)

open Rlist_lint

let default_roots = [ "lib"; "bin"; "test"; "bench"; "examples" ]

let usage () =
  prerr_endline
    "usage: rlist_lint [--json] [--rules r1,r2] [--baseline FILE] \
     [--list-rules] [roots...]";
  exit 64

let list_rules () =
  List.iter
    (fun (r : Rules.t) ->
      Printf.printf "%-12s %-16s %s\n" r.name
        (Rules.family_name r.family)
        r.summary)
    Rules.all;
  exit 0

let () =
  let json = ref false in
  let rules = ref None in
  let baseline = ref None in
  let roots = ref [] in
  let rec parse = function
    | [] -> ()
    | "--json" :: rest ->
      json := true;
      parse rest
    | "--list-rules" :: _ -> list_rules ()
    | "--rules" :: spec :: rest ->
      let names =
        String.split_on_char ',' spec
        |> List.map String.trim
        |> List.filter (fun s -> not (String.equal s ""))
      in
      List.iter
        (fun n ->
          if Option.is_none (Rules.find n) then begin
            Printf.eprintf "rlist_lint: unknown rule %S (try --list-rules)\n"
              n;
            exit 64
          end)
        names;
      rules := Some names;
      parse rest
    | "--baseline" :: file :: rest ->
      if not (Sys.file_exists file) then begin
        Printf.eprintf "rlist_lint: baseline file %S not found\n" file;
        exit 64
      end;
      baseline := Some (Lint.load_baseline file);
      parse rest
    | ("--help" | "-h") :: _ | ("--rules" | "--baseline") :: [] -> usage ()
    | arg :: _ when String.length arg > 0 && arg.[0] = '-' ->
      Printf.eprintf "rlist_lint: unknown option %s\n" arg;
      usage ()
    | root :: rest ->
      roots := root :: !roots;
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let roots = match List.rev !roots with [] -> default_roots | rs -> rs in
  List.iter
    (fun r ->
      if not (Sys.file_exists r) then begin
        Printf.eprintf "rlist_lint: no such root %S\n" r;
        exit 64
      end)
    roots;
  let findings = Lint.run ?rules:!rules roots in
  let findings =
    match !baseline with
    | None -> findings
    | Some b -> Lint.apply_baseline b findings
  in
  if !json then print_endline (Lint.report_json findings)
  else begin
    List.iter
      (fun f -> Format.printf "%a@." Finding.pp f)
      findings;
    match findings with
    | [] -> print_endline "lint: clean"
    | fs -> Printf.printf "lint: %d finding(s)\n" (List.length fs)
  end;
  exit (Lint.exit_code findings)
