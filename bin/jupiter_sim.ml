(* jupiter-sim: command-line driver for the replicated-list protocols.

   Subcommands:
     simulate  run a random workload under a protocol and report
               convergence, specification verdicts, and cost counters
     check     run one protocol over many seeds and report the first
               specification violation found (none expected for the
               correct protocols; the naive foil fails quickly)
     viz       print (and optionally write DOT for) the CSS state-space
               of a named figure scenario
     trace     replay a figure scenario with the observability layer on
               and emit the structured JSONL event trace
     figures   replay every figure scenario and print its verdicts *)

open Rlist_model
open Cmdliner

type protocol_choice =
  | P_css
  | P_cscw
  | P_rga
  | P_naive
  | P_pruned
  | P_logoot
  | P_sequencer
  | P_treedoc
  | P_css_p2p
  | P_ttf

let protocol_names =
  [
    "css", P_css;
    "cscw", P_cscw;
    "rga", P_rga;
    "naive", P_naive;
    "css-pruned", P_pruned;
    "logoot", P_logoot;
    "css-seq", P_sequencer;
    "treedoc", P_treedoc;
    "css-p2p", P_css_p2p;
    "ttf", P_ttf;
  ]

(* Run a protocol (chosen at runtime) through one random workload and
   return a uniform summary. *)
type summary = {
  s_protocol : string;
  s_events : int;
  s_converged : bool;
  s_final : string;
  s_ots : int;
  s_metadata : int;
  s_convergence : Rlist_spec.Check.result;
  s_weak : Rlist_spec.Check.result;
  s_strong : Rlist_spec.Check.result;
}

let run_one (type c s c2s s2c)
    (module P : Rlist_sim.Protocol_intf.PROTOCOL
      with type client = c
       and type server = s
       and type c2s = c2s
       and type s2c = s2c) ~nclients ~profile ~updates ~seed =
  let module E = Rlist_sim.Engine.Make (P) in
  let t = E.create ~nclients () in
  let rng = Random.State.make [| seed |] in
  let intent = Rlist_workload.Workload.intent_generator profile ~nclients ~rng in
  let params = Rlist_workload.Workload.params profile ~updates in
  let schedule = E.run_random ~intent t ~rng ~params in
  let trace = E.trace t in
  {
    s_protocol = P.name;
    s_events = List.length schedule;
    s_converged = E.converged t;
    s_final =
      Document.to_string
        (if P.server_is_replica then E.server_document t
         else E.client_document t 1);
    s_ots = E.total_ot_count t;
    s_metadata = E.total_metadata_size t;
    s_convergence = Rlist_spec.Convergence.check trace;
    s_weak = Rlist_spec.Weak_spec.check trace;
    s_strong = Rlist_spec.Strong_spec.check trace;
  }

let replay_one (type c s c2s s2c)
    (module P : Rlist_sim.Protocol_intf.PROTOCOL
      with type client = c
       and type server = s
       and type c2s = c2s
       and type s2c = s2c) (file : Rlist_sim.Schedule_text.file) =
  let module E = Rlist_sim.Engine.Make (P) in
  let t = E.create ~initial:file.initial ~nclients:file.nclients () in
  E.run t file.events;
  let trace = E.trace t in
  {
    s_protocol = P.name;
    s_events = List.length file.events;
    s_converged = E.converged t;
    s_final = Document.to_string (E.client_document t 1);
    s_ots = E.total_ot_count t;
    s_metadata = E.total_metadata_size t;
    s_convergence = Rlist_spec.Convergence.check trace;
    s_weak = Rlist_spec.Weak_spec.check trace;
    s_strong = Rlist_spec.Strong_spec.check trace;
  }

let replay_protocol choice file =
  match choice with
  | P_css -> replay_one (module Jupiter_css.Protocol) file
  | P_cscw -> replay_one (module Jupiter_cscw.Protocol) file
  | P_rga -> replay_one (module Jupiter_rga.Protocol) file
  | P_naive -> replay_one (module Jupiter_cscw.Naive_p2p) file
  | P_pruned -> replay_one (module Jupiter_css.Pruned_protocol) file
  | P_logoot -> replay_one (module Jupiter_logoot.Protocol) file
  | P_sequencer -> replay_one (module Jupiter_css.Sequencer_protocol) file
  | P_treedoc -> replay_one (module Jupiter_treedoc.Protocol) file
  | P_css_p2p | P_ttf ->
    prerr_endline
      "replay: peer-to-peer protocols use a different schedule shape; use \
       simulate instead";
    exit 1

let record_schedule ~profile ~nclients ~updates ~seed ~path =
  let module E = Rlist_sim.Engine.Make (Jupiter_css.Protocol) in
  let t = E.create ~nclients () in
  let rng = Random.State.make [| seed |] in
  let intent = Rlist_workload.Workload.intent_generator profile ~nclients ~rng in
  let params = Rlist_workload.Workload.params profile ~updates in
  let schedule = E.run_random ~intent t ~rng ~params in
  (try Rlist_sim.Schedule_text.save ~path ~nclients schedule
   with Sys_error msg ->
     Printf.eprintf "cannot write %s: %s\n" path msg;
     exit 1);
  Printf.printf "recorded %d events to %s (generated under the css protocol)\n"
    (List.length schedule) path

(* Serverless protocols run on the peer-to-peer engine but report the
   same summary shape. *)
let run_one_p2p (module P : Rlist_sim.P2p_protocol_intf.P2P_PROTOCOL)
    ~nclients ~profile ~updates ~seed =
  let module E = Rlist_sim.P2p_engine.Make (P) in
  let t = E.create ~npeers:nclients () in
  let rng = Random.State.make [| seed |] in
  let intent = Rlist_workload.Workload.intent_generator profile ~nclients ~rng in
  let params = Rlist_workload.Workload.params profile ~updates in
  let schedule = E.run_random ~intent t ~rng ~params in
  let trace = E.trace t in
  {
    s_protocol = P.name;
    s_events = List.length schedule;
    s_converged = E.converged t;
    s_final = Document.to_string (E.document t 1);
    s_ots = E.total_ot_count t;
    s_metadata = E.total_metadata_size t;
    s_convergence = Rlist_spec.Convergence.check trace;
    s_weak = Rlist_spec.Weak_spec.check trace;
    s_strong = Rlist_spec.Strong_spec.check trace;
  }

let run_protocol choice ~nclients ~profile ~updates ~seed =
  match choice with
  | P_css ->
    run_one (module Jupiter_css.Protocol) ~nclients ~profile ~updates ~seed
  | P_cscw ->
    run_one (module Jupiter_cscw.Protocol) ~nclients ~profile ~updates ~seed
  | P_rga ->
    run_one (module Jupiter_rga.Protocol) ~nclients ~profile ~updates ~seed
  | P_naive ->
    run_one (module Jupiter_cscw.Naive_p2p) ~nclients ~profile ~updates ~seed
  | P_pruned ->
    run_one (module Jupiter_css.Pruned_protocol) ~nclients ~profile ~updates
      ~seed
  | P_logoot ->
    run_one (module Jupiter_logoot.Protocol) ~nclients ~profile ~updates ~seed
  | P_sequencer ->
    run_one (module Jupiter_css.Sequencer_protocol) ~nclients ~profile
      ~updates ~seed
  | P_treedoc ->
    run_one (module Jupiter_treedoc.Protocol) ~nclients ~profile ~updates
      ~seed
  | P_css_p2p ->
    run_one_p2p (module Jupiter_css.Distributed_protocol) ~nclients ~profile
      ~updates ~seed
  | P_ttf ->
    run_one_p2p (module Jupiter_ttf.Adopted_protocol) ~nclients ~profile
      ~updates ~seed

let pp_summary s =
  Printf.printf "protocol:    %s\n" s.s_protocol;
  Printf.printf "events:      %d\n" s.s_events;
  Printf.printf "converged:   %b\n" s.s_converged;
  Printf.printf "final:       %S\n" s.s_final;
  Printf.printf "OT calls:    %d\n" s.s_ots;
  Printf.printf "metadata:    %d\n" s.s_metadata;
  Format.printf "convergence: %a@." Rlist_spec.Check.pp s.s_convergence;
  Format.printf "weak spec:   %a@." Rlist_spec.Check.pp s.s_weak;
  Format.printf "strong spec: %a@." Rlist_spec.Check.pp s.s_strong

(* --- arguments -------------------------------------------------------- *)

let protocol_arg =
  let protocol_conv = Arg.enum protocol_names in
  Arg.(value & opt protocol_conv P_css
       & info [ "p"; "protocol" ] ~docv:"PROTOCOL"
           ~doc:
             "Protocol to run: css, cscw, rga, logoot, treedoc, css-pruned, \
              css-seq, css-p2p, ttf, or naive (the broken foil).")

let profile_arg =
  let parse s =
    match Rlist_workload.Workload.profile_of_name s with
    | Some p -> Ok p
    | None -> Error (`Msg (Printf.sprintf "unknown workload profile %S" s))
  in
  let print ppf p =
    Format.pp_print_string ppf (Rlist_workload.Workload.profile_name p)
  in
  Arg.(value
       & opt (conv (parse, print)) Rlist_workload.Workload.Uniform
       & info [ "w"; "workload" ] ~docv:"PROFILE"
           ~doc:"Workload profile: uniform, typing, hotspot, append-log, churn.")

let clients_arg =
  Arg.(value & opt int 4 & info [ "n"; "clients" ] ~docv:"N"
         ~doc:"Number of clients.")

let updates_arg =
  Arg.(value & opt int 100 & info [ "u"; "updates" ] ~docv:"K"
         ~doc:"Number of update operations to generate.")

let seed_arg =
  Arg.(value & opt int 1 & info [ "s"; "seed" ] ~docv:"SEED"
         ~doc:"Random seed (runs are deterministic per seed).")

let seeds_arg =
  Arg.(value & opt int 100 & info [ "seeds" ] ~docv:"COUNT"
         ~doc:"How many seeds to explore.")

(* --- simulate --------------------------------------------------------- *)

let simulate protocol profile nclients updates seed =
  pp_summary (run_protocol protocol ~nclients ~profile ~updates ~seed)

let simulate_cmd =
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Run one random collaborative-editing session and report on it.")
    Term.(const simulate $ protocol_arg $ profile_arg $ clients_arg
          $ updates_arg $ seed_arg)

(* --- check ------------------------------------------------------------ *)

let check protocol profile nclients updates seeds =
  let violations = ref 0 in
  let crashes = ref 0 in
  for seed = 1 to seeds do
    match run_protocol protocol ~nclients ~profile ~updates ~seed with
    | s ->
      let bad r = not (Rlist_spec.Check.is_satisfied r) in
      if (not s.s_converged) || bad s.s_convergence || bad s.s_weak then begin
        incr violations;
        if !violations = 1 then begin
          Printf.printf "first violation at seed %d:\n" seed;
          pp_summary s
        end
      end
    | exception Invalid_argument msg ->
      incr crashes;
      if !crashes = 1 then
        Printf.printf "first crash at seed %d: %s\n" seed msg
  done;
  Printf.printf
    "checked %d seeds: %d convergence/weak-spec violations, %d crashes\n"
    seeds !violations !crashes;
  if !violations + !crashes > 0 then exit 1

let check_cmd =
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Hunt for convergence or weak-list-specification violations across \
          many seeds.  Exits non-zero when any is found (expected for the \
          naive protocol only).")
    Term.(const check $ protocol_arg $ profile_arg $ clients_arg $ updates_arg
          $ seeds_arg)

(* --- viz ------------------------------------------------------------- *)

let viz name emit_dot =
  match Rlist_sim.Figures.find name with
  | None ->
    Printf.eprintf "unknown scenario %S; available: %s\n" name
      (String.concat ", "
         (List.map
            (fun (s : Rlist_sim.Figures.scenario) -> s.sname)
            Rlist_sim.Figures.all));
    exit 1
  | Some scenario ->
    let module E = Rlist_sim.Engine.Make (Jupiter_css.Protocol) in
    let t = E.create ~initial:scenario.initial ~nclients:scenario.nclients () in
    E.run t scenario.schedule;
    let space = Jupiter_css.Protocol.server_space (E.server t) in
    Printf.printf "%s: %s\n\n" scenario.sname scenario.description;
    print_string (Jupiter_css.Render.to_ascii space ~initial:scenario.initial);
    if emit_dot then begin
      let path = scenario.sname ^ ".dot" in
      match open_out path with
      | oc ->
        output_string oc
          (Jupiter_css.Render.to_dot space ~initial:scenario.initial
             ~name:scenario.sname);
        close_out oc;
        Printf.printf "\nwrote %s\n" path
      | exception Sys_error msg ->
        Printf.eprintf "cannot write %s: %s\n" path msg;
        exit 1
    end

let viz_cmd =
  let name_arg =
    Arg.(value & pos 0 string "figure7"
         & info [] ~docv:"SCENARIO" ~doc:"Figure scenario name.")
  in
  let dot_arg =
    Arg.(value & flag & info [ "dot" ] ~doc:"Also write a Graphviz .dot file.")
  in
  Cmd.v
    (Cmd.info "viz"
       ~doc:"Render the CSS n-ary ordered state-space of a figure scenario.")
    Term.(const viz $ name_arg $ dot_arg)

(* --- record / replay --------------------------------------------------- *)

let record profile nclients updates seed path =
  record_schedule ~profile ~nclients ~updates ~seed ~path

let record_cmd =
  let path_arg =
    Arg.(value & opt string "session.sched"
         & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output schedule file.")
  in
  Cmd.v
    (Cmd.info "record"
       ~doc:
         "Run a random session under the CSS protocol and save the concrete \
          schedule for later replay.")
    Term.(const record $ profile_arg $ clients_arg $ updates_arg $ seed_arg
          $ path_arg)

let replay protocol path =
  match Rlist_sim.Schedule_text.load ~path with
  | Error msg ->
    Printf.eprintf "cannot load %s: %s\n" path msg;
    exit 1
  | Ok file ->
    (match replay_protocol protocol file with
    | summary -> pp_summary summary
    | exception Invalid_argument msg ->
      (* Replaying a Jupiter schedule on a non-equivalent protocol can
         go out of bounds; report rather than crash. *)
      Printf.printf "replay aborted: %s\n" msg;
      exit 1)

let replay_cmd =
  let path_arg =
    Arg.(value & pos 0 string "session.sched"
         & info [] ~docv:"FILE" ~doc:"Schedule file to replay.")
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:"Replay a recorded schedule under a protocol and report on it.")
    Term.(const replay $ protocol_arg $ path_arg)

(* --- stats ------------------------------------------------------------ *)

let stats_json ~source (st : Jupiter_css.Analysis.stats) ~lemmas =
  let widths =
    String.concat ","
      (List.map (fun (l, w) -> Printf.sprintf "[%d,%d]" l w) st.width_per_level)
  in
  Printf.sprintf
    "{\"source\":%S,\"states\":%d,\"transitions\":%d,\"depth\":%d,\
     \"max_branching\":%d,\"nop_forms\":%d,\"width_per_level\":[%s],\
     \"lemmas_ok\":%b}"
    source st.states st.transitions st.depth st.max_branching st.nop_forms
    widths lemmas

let stats name schedule_file json =
  let build source initial nclients events =
    let module E = Rlist_sim.Engine.Make (Jupiter_css.Protocol) in
    let t = E.create ~initial ~nclients () in
    E.run t events;
    let space = Jupiter_css.Protocol.server_space (E.server t) in
    let st = Jupiter_css.Analysis.stats space in
    let lemmas = Jupiter_css.Analysis.check_all space ~nclients ~initial in
    if json then
      print_endline (stats_json ~source st ~lemmas:(Result.is_ok lemmas))
    else begin
      Format.printf "%a@." Jupiter_css.Analysis.pp_stats st;
      match lemmas with
      | Ok () ->
        print_endline "structural lemmas (6.1/6.3/8.4/8.5/8.7): all hold"
      | Error e -> Printf.printf "structural lemma violated: %s\n" e
    end;
    if Result.is_error lemmas then exit 1
  in
  match schedule_file with
  | Some path -> (
    match Rlist_sim.Schedule_text.load ~path with
    | Error msg ->
      Printf.eprintf "cannot load %s: %s\n" path msg;
      exit 1
    | Ok file -> build path file.initial file.nclients file.events)
  | None -> (
    match Rlist_sim.Figures.find name with
    | None ->
      Printf.eprintf "unknown scenario %S\n" name;
      exit 1
    | Some scenario ->
      build scenario.sname scenario.initial scenario.nclients
        scenario.schedule)

let json_flag =
  Arg.(value & flag
       & info [ "json" ] ~doc:"Emit machine-readable JSON instead of text.")

let stats_cmd =
  let name_arg =
    Arg.(value & pos 0 string "figure7"
         & info [] ~docv:"SCENARIO" ~doc:"Figure scenario name.")
  in
  let file_arg =
    Arg.(value & opt (some string) None
         & info [ "schedule" ] ~docv:"FILE"
             ~doc:"Analyze a recorded schedule file instead of a figure.")
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Structural statistics and lemma checks of the CSS state-space \
          built by a figure scenario or a recorded schedule.  Exits \
          non-zero if a structural lemma fails.")
    Term.(const stats $ name_arg $ file_arg $ json_flag)

(* --- trace ------------------------------------------------------------ *)

(* Replay a figure scenario with the observability layer attached and
   the JSONL sink pointed at [oc].  The CSS run additionally wires
   [State_space.set_observer] on every replica, so the trace shows the
   state-space growing level by level (the paper's Figure 4). *)
let trace_css obs (scenario : Rlist_sim.Figures.scenario) =
  let module E = Rlist_sim.Engine.Make (Jupiter_css.Protocol) in
  let t = E.create ~initial:scenario.initial ~nclients:scenario.nclients () in
  E.attach_obs t obs;
  let wire name set =
    set (fun ~level ~states ~transitions ~ots ->
        ignore ots;
        if Rlist_obs.Obs.tracing obs then
          Rlist_obs.Obs.emit obs
            (Rlist_obs.Event.State_space_grow
               { replica = name; level; states; transitions }))
  in
  wire "server" (Jupiter_css.Protocol.server_set_space_observer (E.server t));
  for i = 1 to scenario.nclients do
    wire
      ("c" ^ string_of_int i)
      (Jupiter_css.Protocol.client_set_space_observer (E.client t i))
  done;
  E.run t scenario.schedule;
  let space = Jupiter_css.Protocol.server_space (E.server t) in
  let st = Jupiter_css.Analysis.stats space in
  E.converged t, E.total_ot_count t, E.total_metadata_size t, Some st

let trace_generic (type c s c2s s2c)
    (module P : Rlist_sim.Protocol_intf.PROTOCOL
      with type client = c
       and type server = s
       and type c2s = c2s
       and type s2c = s2c) obs (scenario : Rlist_sim.Figures.scenario) =
  let module E = Rlist_sim.Engine.Make (P) in
  let t = E.create ~initial:scenario.initial ~nclients:scenario.nclients () in
  E.attach_obs t obs;
  E.run t scenario.schedule;
  E.converged t, E.total_ot_count t, E.total_metadata_size t, None

let trace name protocol out_file json =
  match Rlist_sim.Figures.find name with
  | None ->
    Printf.eprintf "unknown scenario %S; available: %s\n" name
      (String.concat ", "
         (List.map
            (fun (s : Rlist_sim.Figures.scenario) -> s.sname)
            Rlist_sim.Figures.all));
    exit 1
  | Some scenario ->
    let oc, close =
      match out_file with
      | None -> stdout, fun () -> flush stdout
      | Some path -> (
        try
          let oc = open_out path in
          oc, fun () -> close_out oc
        with Sys_error msg ->
          Printf.eprintf "cannot open %s: %s\n" path msg;
          exit 1)
    in
    let sink = Rlist_obs.Sink.channel oc in
    let obs = Rlist_obs.Obs.make ~sink () in
    let run (converged, ots, metadata, space_stats) =
      let space_json =
        match space_stats with
        | None -> ""
        | Some (st : Jupiter_css.Analysis.stats) ->
          Printf.sprintf
            ",\"space_states\":%d,\"space_transitions\":%d,\"space_depth\":%d"
            st.states st.transitions st.depth
      in
      if json then
        output_string oc
          (Printf.sprintf
             "{\"type\":\"summary\",\"scenario\":%S,\"converged\":%b,\
              \"total_transforms\":%d,\"total_metadata\":%d%s,\
              \"metrics\":%s}\n"
             scenario.sname converged ots metadata space_json
             (Rlist_obs.Obs.metrics_json obs))
      else Format.eprintf "%a@." Rlist_obs.Obs.report obs;
      close ();
      if not converged then exit 1
    in
    (match protocol with
    | P_css -> run (trace_css obs scenario)
    | P_cscw -> run (trace_generic (module Jupiter_cscw.Protocol) obs scenario)
    | P_rga -> run (trace_generic (module Jupiter_rga.Protocol) obs scenario)
    | P_naive ->
      run (trace_generic (module Jupiter_cscw.Naive_p2p) obs scenario)
    | P_pruned ->
      run (trace_generic (module Jupiter_css.Pruned_protocol) obs scenario)
    | P_logoot ->
      run (trace_generic (module Jupiter_logoot.Protocol) obs scenario)
    | P_sequencer ->
      run (trace_generic (module Jupiter_css.Sequencer_protocol) obs scenario)
    | P_treedoc ->
      run (trace_generic (module Jupiter_treedoc.Protocol) obs scenario)
    | P_css_p2p | P_ttf ->
      Printf.eprintf
        "trace: figure schedules are client/server shaped; peer-to-peer \
         protocols cannot replay them\n";
      exit 1)

let trace_cmd =
  let name_arg =
    Arg.(value & pos 0 string "figure2"
         & info [] ~docv:"SCENARIO" ~doc:"Figure scenario name.")
  in
  let out_arg =
    Arg.(value & opt (some string) None
         & info [ "o"; "output" ] ~docv:"FILE"
             ~doc:"Write the JSONL trace to FILE instead of stdout.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Replay a figure scenario with metrics and structured tracing \
          enabled; emits one JSON object per generate/send/deliver/apply \
          event (and per state-space growth step under css).  With \
          $(b,--json), a final summary object carries the aggregated \
          counters; otherwise a human-readable metrics report goes to \
          stderr.")
    Term.(const trace $ name_arg $ protocol_arg $ out_arg $ json_flag)

(* --- figures ---------------------------------------------------------- *)

let figures () =
  List.iter
    (fun (scenario : Rlist_sim.Figures.scenario) ->
      let broken = scenario.sname = "figure8" in
      let verdicts =
        if broken then begin
          let module E = Rlist_sim.Engine.Make (Jupiter_cscw.Naive_p2p) in
          let t = E.create ~initial:scenario.initial
                    ~nclients:scenario.nclients () in
          E.run t scenario.schedule;
          let trace = E.trace t in
          ( E.converged t,
            Rlist_spec.Convergence.check trace,
            Rlist_spec.Weak_spec.check trace,
            Rlist_spec.Strong_spec.check trace,
            Document.to_string (E.client_document t 1) )
        end
        else begin
          let module E = Rlist_sim.Engine.Make (Jupiter_css.Protocol) in
          let t = E.create ~initial:scenario.initial
                    ~nclients:scenario.nclients () in
          E.run t scenario.schedule;
          let trace = E.trace t in
          ( E.converged t,
            Rlist_spec.Convergence.check trace,
            Rlist_spec.Weak_spec.check trace,
            Rlist_spec.Strong_spec.check trace,
            Document.to_string (E.server_document t) )
        end
      in
      let converged, conv, weak, strong, final = verdicts in
      let protocol = if broken then "naive" else "css" in
      let show r = if Rlist_spec.Check.is_satisfied r then "yes" else "NO" in
      Printf.printf "%-8s [%-5s] converged=%-5b final=%-10S conv=%-3s weak=%-3s strong=%-3s\n"
        scenario.sname protocol converged final (show conv) (show weak)
        (show strong))
    Rlist_sim.Figures.all

let figures_cmd =
  Cmd.v
    (Cmd.info "figures"
       ~doc:"Replay every paper figure and print a verdict summary.")
    Term.(const figures $ const ())

let () =
  let info =
    Cmd.info "jupiter-sim" ~version:"1.0.0"
      ~doc:
        "Simulate and check replicated-list protocols (CSS/CSCW Jupiter, \
         RGA, and a broken OT foil)."
  in
  exit (Cmd.eval (Cmd.group info [ simulate_cmd; check_cmd; viz_cmd; figures_cmd; record_cmd; replay_cmd;
            stats_cmd; trace_cmd ]))
