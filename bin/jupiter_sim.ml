(* jupiter-sim: command-line driver for the replicated-list protocols.

   Subcommands:
     simulate  run a random workload under a protocol and report
               convergence, specification verdicts, and cost counters
     check     bounded model checking: enumerate every delivery
               interleaving of a small workload (with partial-order
               reduction), check the paper's specifications on each,
               and shrink any counterexample to a minimal witness
     fuzz      run one protocol over many seeds and report the first
               specification violation found (none expected for the
               correct protocols; the naive foil fails quickly)
     soak      run a workload over an unreliable network (drops,
               duplicates, reordering, partitions) with the reliability
               shim, and report convergence plus network counters
     viz       print (and optionally write DOT for) the CSS state-space
               of a named figure scenario
     trace     replay a figure scenario with the observability layer on
               and emit the structured JSONL event trace
     figures   replay every figure scenario and print its verdicts *)

open Rlist_model
open Cmdliner

type protocol_choice =
  | P_css
  | P_cscw
  | P_rga
  | P_naive
  | P_pruned
  | P_logoot
  | P_sequencer
  | P_treedoc
  | P_css_p2p
  | P_ttf

let protocol_names =
  [
    "css", P_css;
    "cscw", P_cscw;
    "rga", P_rga;
    "naive", P_naive;
    "css-pruned", P_pruned;
    "logoot", P_logoot;
    "css-seq", P_sequencer;
    "treedoc", P_treedoc;
    "css-p2p", P_css_p2p;
    "ttf", P_ttf;
  ]

let protocol_key = function
  | P_css -> "css"
  | P_cscw -> "cscw"
  | P_rga -> "rga"
  | P_naive -> "naive"
  | P_pruned -> "css-pruned"
  | P_logoot -> "logoot"
  | P_sequencer -> "css-seq"
  | P_treedoc -> "treedoc"
  | P_css_p2p -> "css-p2p"
  | P_ttf -> "ttf"

module Recorded = Rlist_run.Recorded

(* Run a protocol (chosen at runtime) through one random workload and
   return a uniform summary. *)
type summary = {
  s_protocol : string;
  s_events : int;
  s_converged : bool;
  s_final : string;
  s_ots : int;
  s_metadata : int;
  s_convergence : Rlist_spec.Check.result;
  s_weak : Rlist_spec.Check.result;
  s_strong : Rlist_spec.Check.result;
}

let run_one (type c s c2s s2c)
    (module P : Rlist_sim.Protocol_intf.PROTOCOL
      with type client = c
       and type server = s
       and type c2s = c2s
       and type s2c = s2c) ~nclients ~profile ~updates ~seed =
  let module E = Rlist_sim.Engine.Make (P) in
  let t = E.create ~nclients () in
  let rng = Random.State.make [| seed |] in
  let intent = Rlist_workload.Workload.intent_generator profile ~nclients ~rng in
  let params = Rlist_workload.Workload.params profile ~updates in
  let schedule = E.run_random ~intent t ~rng ~params in
  let trace = E.trace t in
  {
    s_protocol = P.name;
    s_events = List.length schedule;
    s_converged = E.converged t;
    s_final =
      Document.to_string
        (if P.server_is_replica then E.server_document t
         else E.client_document t 1);
    s_ots = E.total_ot_count t;
    s_metadata = E.total_metadata_size t;
    s_convergence = Rlist_spec.Convergence.check trace;
    s_weak = Rlist_spec.Weak_spec.check trace;
    s_strong = Rlist_spec.Strong_spec.check trace;
  }

let replay_one (type c s c2s s2c)
    (module P : Rlist_sim.Protocol_intf.PROTOCOL
      with type client = c
       and type server = s
       and type c2s = c2s
       and type s2c = s2c) (file : Rlist_sim.Schedule_text.file) =
  let module E = Rlist_sim.Engine.Make (P) in
  let t = E.create ~initial:file.initial ~nclients:file.nclients () in
  E.run t file.events;
  let trace = E.trace t in
  {
    s_protocol = P.name;
    s_events = List.length file.events;
    s_converged = E.converged t;
    s_final = Document.to_string (E.client_document t 1);
    s_ots = E.total_ot_count t;
    s_metadata = E.total_metadata_size t;
    s_convergence = Rlist_spec.Convergence.check trace;
    s_weak = Rlist_spec.Weak_spec.check trace;
    s_strong = Rlist_spec.Strong_spec.check trace;
  }

let replay_protocol choice file =
  match choice with
  | P_css -> replay_one (module Jupiter_css.Protocol) file
  | P_cscw -> replay_one (module Jupiter_cscw.Protocol) file
  | P_rga -> replay_one (module Jupiter_rga.Protocol) file
  | P_naive -> replay_one (module Jupiter_cscw.Naive_p2p) file
  | P_pruned -> replay_one (module Jupiter_css.Pruned_protocol) file
  | P_logoot -> replay_one (module Jupiter_logoot.Protocol) file
  | P_sequencer -> replay_one (module Jupiter_css.Sequencer_protocol) file
  | P_treedoc -> replay_one (module Jupiter_treedoc.Protocol) file
  | P_css_p2p | P_ttf ->
    prerr_endline
      "replay: peer-to-peer protocols use a different schedule shape; use \
       simulate instead";
    exit 1

let record_schedule ~profile ~nclients ~updates ~seed ~path =
  let module E = Rlist_sim.Engine.Make (Jupiter_css.Protocol) in
  let t = E.create ~nclients () in
  let rng = Random.State.make [| seed |] in
  let intent = Rlist_workload.Workload.intent_generator profile ~nclients ~rng in
  let params = Rlist_workload.Workload.params profile ~updates in
  let schedule = E.run_random ~intent t ~rng ~params in
  (try Rlist_sim.Schedule_text.save ~path ~nclients schedule
   with Sys_error msg ->
     Printf.eprintf "cannot write %s: %s\n" path msg;
     exit 1);
  Printf.printf "recorded %d events to %s (generated under the css protocol)\n"
    (List.length schedule) path

(* Serverless protocols run on the peer-to-peer engine but report the
   same summary shape. *)
let run_one_p2p (module P : Rlist_sim.P2p_protocol_intf.P2P_PROTOCOL)
    ~nclients ~profile ~updates ~seed =
  let module E = Rlist_sim.P2p_engine.Make (P) in
  let t = E.create ~npeers:nclients () in
  let rng = Random.State.make [| seed |] in
  let intent = Rlist_workload.Workload.intent_generator profile ~nclients ~rng in
  let params = Rlist_workload.Workload.params profile ~updates in
  let schedule = E.run_random ~intent t ~rng ~params in
  let trace = E.trace t in
  {
    s_protocol = P.name;
    s_events = List.length schedule;
    s_converged = E.converged t;
    s_final = Document.to_string (E.document t 1);
    s_ots = E.total_ot_count t;
    s_metadata = E.total_metadata_size t;
    s_convergence = Rlist_spec.Convergence.check trace;
    s_weak = Rlist_spec.Weak_spec.check trace;
    s_strong = Rlist_spec.Strong_spec.check trace;
  }

let run_protocol choice ~nclients ~profile ~updates ~seed =
  match choice with
  | P_css ->
    run_one (module Jupiter_css.Protocol) ~nclients ~profile ~updates ~seed
  | P_cscw ->
    run_one (module Jupiter_cscw.Protocol) ~nclients ~profile ~updates ~seed
  | P_rga ->
    run_one (module Jupiter_rga.Protocol) ~nclients ~profile ~updates ~seed
  | P_naive ->
    run_one (module Jupiter_cscw.Naive_p2p) ~nclients ~profile ~updates ~seed
  | P_pruned ->
    run_one (module Jupiter_css.Pruned_protocol) ~nclients ~profile ~updates
      ~seed
  | P_logoot ->
    run_one (module Jupiter_logoot.Protocol) ~nclients ~profile ~updates ~seed
  | P_sequencer ->
    run_one (module Jupiter_css.Sequencer_protocol) ~nclients ~profile
      ~updates ~seed
  | P_treedoc ->
    run_one (module Jupiter_treedoc.Protocol) ~nclients ~profile ~updates
      ~seed
  | P_css_p2p ->
    run_one_p2p (module Jupiter_css.Distributed_protocol) ~nclients ~profile
      ~updates ~seed
  | P_ttf ->
    run_one_p2p (module Jupiter_ttf.Adopted_protocol) ~nclients ~profile
      ~updates ~seed

let pp_summary s =
  Printf.printf "protocol:    %s\n" s.s_protocol;
  Printf.printf "events:      %d\n" s.s_events;
  Printf.printf "converged:   %b\n" s.s_converged;
  Printf.printf "final:       %S\n" s.s_final;
  Printf.printf "OT calls:    %d\n" s.s_ots;
  Printf.printf "metadata:    %d\n" s.s_metadata;
  Format.printf "convergence: %a@." Rlist_spec.Check.pp s.s_convergence;
  Format.printf "weak spec:   %a@." Rlist_spec.Check.pp s.s_weak;
  Format.printf "strong spec: %a@." Rlist_spec.Check.pp s.s_strong

(* --- arguments -------------------------------------------------------- *)

let protocol_arg =
  let protocol_conv = Arg.enum protocol_names in
  Arg.(value & opt protocol_conv P_css
       & info [ "p"; "protocol" ] ~docv:"PROTOCOL"
           ~doc:
             "Protocol to run: css, cscw, rga, logoot, treedoc, css-pruned, \
              css-seq, css-p2p, ttf, or naive (the broken foil).")

let profile_arg =
  let parse s =
    match Rlist_workload.Workload.profile_of_name s with
    | Some p -> Ok p
    | None -> Error (`Msg (Printf.sprintf "unknown workload profile %S" s))
  in
  let print ppf p =
    Format.pp_print_string ppf (Rlist_workload.Workload.profile_name p)
  in
  Arg.(value
       & opt (conv (parse, print)) Rlist_workload.Workload.Uniform
       & info [ "w"; "workload" ] ~docv:"PROFILE"
           ~doc:"Workload profile: uniform, typing, hotspot, append-log, churn.")

let clients_arg =
  Arg.(value & opt int 4 & info [ "n"; "clients" ] ~docv:"N"
         ~doc:"Number of clients.")

let updates_arg =
  Arg.(value & opt int 100 & info [ "u"; "updates" ] ~docv:"K"
         ~doc:"Number of update operations to generate.")

let seed_arg =
  Arg.(value & opt int 1 & info [ "s"; "seed" ] ~docv:"SEED"
         ~doc:"Random seed (runs are deterministic per seed).")

let seeds_arg =
  Arg.(value & opt int 100 & info [ "seeds" ] ~docv:"COUNT"
         ~doc:"How many seeds to explore.")

let json_arg =
  Arg.(value & flag
       & info [ "json" ] ~doc:"Emit a machine-readable JSON report.")

let batch_arg =
  Arg.(value & flag
       & info [ "batch" ]
           ~doc:
             "Coalesce consecutive sends per channel into one batch message \
              (one sequence number, one retransmission unit), delivered \
              through the protocols' batch entry points.")

let fastpath_arg =
  Arg.(value & flag
       & info [ "fastpath" ]
           ~doc:
             "Enable the CSS transform fast paths (pure-append run \
              specialization) alongside the always-on context-match \
              shortcut; the fastpath.* counters attribute the skipped \
              ladder work.")

let gc_conv =
  Arg.conv
    ( (fun s ->
        match Rlist_gc.of_string s with
        | Ok p -> Ok p
        | Error msg -> Error (`Msg msg)),
      fun ppf p -> Format.pp_print_string ppf (Rlist_gc.to_string p) )

let gc_arg =
  Arg.(value & opt (some gc_conv) None
       & info [ "gc" ] ~docv:"POLICY"
           ~doc:
             "Continuous metadata GC: $(b,default) or a field list like \
              $(b,ops=64,meta=4096,lag=256,retain=64,snap=4) (at least one \
              of ops/meta/lag).  Compaction cycles run out of band, so the \
              run's schedule, digest, and final documents are bit-identical \
              to the same seed without GC — it just retains less metadata.")

(* The append specialization is engine-scoped: one fast-path record
   per CLI run, handed to the engine constructor, so the counters
   cover exactly this run. *)
let publish_fastpath fp metrics =
  List.iter
    (fun (name, v) ->
      Rlist_obs.Metrics.add (Rlist_obs.Metrics.counter metrics name) v)
    (Rlist_ot.Fastpath.fields fp)

(* --- simulate --------------------------------------------------------- *)

let simulate protocol profile nclients updates seed =
  pp_summary (run_protocol protocol ~nclients ~profile ~updates ~seed)

let simulate_cmd =
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Run one random collaborative-editing session and report on it.")
    Term.(const simulate $ protocol_arg $ profile_arg $ clients_arg
          $ updates_arg $ seed_arg)

let json_flag =
  Arg.(value & flag
       & info [ "json" ] ~doc:"Emit machine-readable JSON instead of text.")

(* --- fuzz ------------------------------------------------------------- *)

let pp_outcome (o : Recorded.outcome) =
  Printf.printf "protocol:    %s\n" o.o_protocol;
  Printf.printf "events:      %d\n" o.o_events;
  Printf.printf "converged:   %b\n" o.o_converged;
  (match o.o_finals with
  | (_, doc) :: _ -> Printf.printf "final:       %S\n" doc
  | [] -> ());
  Printf.printf "OT calls:    %d\n" o.o_ots;
  Printf.printf "metadata:    %d\n" o.o_metadata;
  let show b = if b then "satisfied" else "VIOLATED" in
  Printf.printf "convergence: %s\n" (show o.o_convergence);
  Printf.printf "weak spec:   %s\n" (show o.o_weak);
  Printf.printf "strong spec: %s\n" (show o.o_strong)

let dump_recording ~spec ?outcome ?aborted recorder path =
  let digest =
    match outcome, aborted with
    | Some o, _ -> Recorded.digest_of o
    | None, Some msg -> [ "aborted", msg ]
    | None, None -> []
  in
  try
    Rlist_obs.Recorder.dump
      ~header:(Recorded.header_of spec)
      ~digest recorder path;
    true
  with Sys_error msg ->
    Printf.eprintf "cannot write recording %s: %s\n" path msg;
    false


let fuzz protocol profile nclients updates seeds gc =
  let violations = ref 0 in
  let crashes = ref 0 in
  let pname = protocol_key protocol in
  for seed = 1 to seeds do
    let spec =
      { (Recorded.default ~protocol:pname) with profile; nclients; updates;
        seed; gc }
    in
    let recorder = Rlist_obs.Recorder.create () in
    match Recorded.run ~recorder spec with
    | outcome ->
      if not (Recorded.passed outcome) then begin
        incr violations;
        if !violations = 1 then begin
          Printf.printf "first violation at seed %d:\n" seed;
          pp_outcome outcome;
          let path = Printf.sprintf "fuzz-%s-%d.jfr" pname seed in
          if dump_recording ~spec ~outcome recorder path then
            Printf.printf "recording:   %s\n" path
        end
      end
    | exception Invalid_argument msg ->
      incr crashes;
      if !crashes = 1 then begin
        Printf.printf "first crash at seed %d: %s\n" seed msg;
        let path = Printf.sprintf "fuzz-%s-%d.jfr" pname seed in
        if dump_recording ~spec ~aborted:msg recorder path then
          Printf.printf "recording:   %s\n" path
      end
  done;
  Printf.printf
    "checked %d seeds: %d convergence/weak-spec violations, %d crashes\n"
    seeds !violations !crashes;
  if !violations + !crashes > 0 then exit 1

let fuzz_cmd =
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Hunt for convergence or weak-list-specification violations across \
          many random seeds.  Exits non-zero when any is found (expected for \
          the naive protocol only).  For exhaustive checking at small bounds \
          use $(b,check).")
    Term.(const fuzz $ protocol_arg $ profile_arg $ clients_arg $ updates_arg
          $ seeds_arg $ gc_arg)

(* --- soak ------------------------------------------------------------- *)

(* Run one protocol through a random workload over an unreliable
   network via the shared recorded-run driver (lib/run): a fault
   specification plus (by default) the reliability shim that restores
   the FIFO-exactly-once channels the protocols assume.  The flight
   recorder rides along on every soak; the ring is dumped to disk when
   the gate fails (or on demand with --record-out) so the failing run
   can be re-executed bit-identically with `jupiter_sim replay`. *)

let soak protocol faults_str no_shim rto batching fastpath gc nclients
    profile updates seed record_out json =
  let faults =
    match Rlist_net.Faults.of_string faults_str with
    | Ok f -> f
    | Error msg ->
      Printf.eprintf "soak: %s\n" msg;
      exit 1
  in
  let shim = not no_shim in
  let spec =
    {
      Recorded.protocol = protocol_key protocol;
      profile;
      nclients;
      updates;
      seed;
      faults;
      shim;
      rto;
      batching;
      fastpath;
      gc;
    }
  in
  let obs = Rlist_obs.Obs.make () in
  let recorder = Rlist_obs.Recorder.create () in
  match Recorded.run ~obs ~recorder spec with
  | exception Invalid_argument msg ->
    (* a channel contract violation crashed the protocol, or the
       network could not quiesce: with the shim on neither happens *)
    let dump_path =
      Option.value record_out
        ~default:(Printf.sprintf "soak-%s-%d.jfr" spec.Recorded.protocol seed)
    in
    let dumped = dump_recording ~spec ~aborted:msg recorder dump_path in
    if json then
      Printf.printf
        "{\"faults\": %S, \"shim\": %b, \"seed\": %d, \"aborted\": %S%s}\n"
        (Rlist_net.Faults.to_string faults)
        shim seed msg
        (if dumped then Printf.sprintf ", \"recording\": %S" dump_path
         else "")
    else begin
      Printf.printf "soak aborted: %s\n" msg;
      if dumped then Printf.printf "recording:   %s\n" dump_path
    end;
    exit 1
  | outcome ->
    let ok = Recorded.passed outcome in
    let dump_path =
      match record_out with
      | Some path -> Some path
      | None when not ok ->
        Some (Printf.sprintf "soak-%s-%d.jfr" spec.Recorded.protocol seed)
      | None -> None
    in
    let dumped =
      match dump_path with
      | Some path ->
        if dump_recording ~spec ~outcome recorder path then dump_path
        else None
      | None -> None
    in
    if json then
      Printf.printf
        "{\"protocol\": %S, \"faults\": %S, \"shim\": %b, \"batch\": %b, \
         \"fastpath\": %b, \"seed\": %d, \"events\": %d, \"converged\": %b, \
         \"convergence\": %b, \"weak\": %b, \"strong\": %b, \"net\": %s, \
         \"metrics\": %s%s}\n"
        outcome.Recorded.o_protocol
        (Rlist_net.Faults.to_string faults)
        shim batching fastpath seed outcome.Recorded.o_events
        outcome.Recorded.o_converged outcome.Recorded.o_convergence
        outcome.Recorded.o_weak outcome.Recorded.o_strong
        (Rlist_net.Stats.to_json outcome.Recorded.o_net)
        (Rlist_obs.Obs.metrics_json obs)
        (match dumped with
        | Some path -> Printf.sprintf ", \"recording\": %S" path
        | None -> "")
    else begin
      pp_outcome outcome;
      Printf.printf "faults:      %s\n" (Rlist_net.Faults.to_string faults);
      Printf.printf "shim:        %b\n" shim;
      if batching || fastpath then
        Printf.printf "batch:       %b  fastpath: %b\n" batching fastpath;
      Format.printf "%a@." Rlist_net.Stats.pp outcome.Recorded.o_net;
      match dumped with
      | Some path -> Printf.printf "recording:   %s\n" path
      | None -> ()
    end;
    (* Strong-spec violations are a theorem for the OT protocols
       (Thm 8.1), so the gate is convergence + weak, like fuzz. *)
    if not ok then exit 1

let soak_protocol_arg =
  let protocol_conv = Arg.enum protocol_names in
  Arg.(required
       & pos 0 (some protocol_conv) None
       & info [] ~docv:"PROTOCOL"
           ~doc:"Protocol to soak (same names as $(b,simulate)).")

let faults_arg =
  Arg.(value & opt string "chaos"
       & info [ "faults" ] ~docv:"SPEC"
           ~doc:
             "Fault model: a preset (none, drop, dup, reorder, partition, \
              chaos, heavy-loss) or a field list like \
              $(b,drop=0.3,dup=0.1,reorder=0.2,delay=4,partition=60:20).")

let no_shim_arg =
  Arg.(value & flag
       & info [ "no-shim" ]
           ~doc:
             "Disable the reliability shim: faults reach the protocol \
              unfiltered (the negative control — expect divergence or an \
              aborted run at any positive loss).")

let rto_arg =
  Arg.(value & opt int 12
       & info [ "rto" ] ~docv:"TICKS"
           ~doc:"Shim retransmission timeout in virtual-clock ticks.")

let record_out_arg =
  Arg.(value & opt (some string) None
       & info [ "record-out" ] ~docv:"FILE"
           ~doc:
             "Always dump the flight recording to FILE (by default a \
              recording is dumped only when the gate fails, to \
              soak-<protocol>-<seed>.jfr).")

let soak_cmd =
  Cmd.v
    (Cmd.info "soak"
       ~doc:
         "Run a random workload over an unreliable network (drops, \
          duplicates, reordering, partitions) with the reliability shim \
          restoring the FIFO-exactly-once channel contract, and report \
          convergence plus the network counters (retransmissions, \
          suppressed duplicates, message amplification).  Exits non-zero \
          on a convergence or weak-specification violation.")
    Term.(const soak $ soak_protocol_arg $ faults_arg $ no_shim_arg $ rto_arg
          $ batch_arg $ fastpath_arg $ gc_arg $ clients_arg $ profile_arg
          $ updates_arg $ seed_arg $ record_out_arg $ json_arg)

(* --- longrun ----------------------------------------------------------- *)

(* Million-op soak through one engine (lib/run/longrun): chunked
   sampling of metadata, heap, and per-op latency, to demonstrate the
   continuous GC keeps both flat where the unbounded run grows.  The
   digest line is the CI gate's handle for GC-on/GC-off equality. *)

let longrun protocol profile nclients updates chunk seed faults_str gc
    assert_flat max_meta json =
  let faults =
    match Rlist_net.Faults.of_string faults_str with
    | Ok f -> f
    | Error msg ->
      Printf.eprintf "longrun: %s\n" msg;
      exit 1
  in
  let r =
    match
      Rlist_run.Longrun.run ?gc ~faults ~now:Unix.gettimeofday
        ~protocol:(protocol_key protocol) ~profile ~nclients ~updates ~chunk
        ~seed ()
    with
    | r -> r
    | exception Invalid_argument msg ->
      Printf.eprintf "longrun: %s\n" msg;
      exit 1
  in
  if json then print_endline (Rlist_run.Longrun.result_to_json r)
  else Format.printf "%a@." Rlist_run.Longrun.pp r;
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  if not r.Rlist_run.Longrun.l_converged then fail "run did not converge";
  (match max_meta with
  | Some bound when r.Rlist_run.Longrun.l_meta_peak > bound ->
    fail "metadata peak %d exceeds --max-meta %d"
      r.Rlist_run.Longrun.l_meta_peak bound
  | _ -> ());
  if assert_flat && r.Rlist_run.Longrun.l_flat_meta > 2.0 then
    fail "metadata is not flat: late/early ratio %.2f > 2.0"
      r.Rlist_run.Longrun.l_flat_meta;
  List.iter (Printf.eprintf "longrun: GATE: %s\n") (List.rev !failures);
  if !failures <> [] then exit 1

let longrun_cmd =
  let updates_arg =
    Arg.(value & opt int 1_000_000
         & info [ "u"; "updates" ] ~docv:"K"
             ~doc:"Total update operations over the whole horizon.")
  in
  let chunk_arg =
    Arg.(value & opt int 10_000
         & info [ "chunk" ] ~docv:"K"
             ~doc:
               "Updates per sampled chunk (the engine quiesces between \
                chunks).")
  in
  let faults_arg =
    Arg.(value & opt string "none"
         & info [ "faults" ] ~docv:"SPEC"
             ~doc:"Fault model for the wire (as in $(b,soak)); default none.")
  in
  let assert_flat_arg =
    Arg.(value & flag
         & info [ "assert-flat" ]
             ~doc:
               "Exit non-zero unless live metadata stays flat (mean over \
                the last quarter of chunks at most 2x the first quarter) — \
                the CI gate for GC-on runs.")
  in
  let max_meta_arg =
    Arg.(value & opt (some int) None
         & info [ "max-meta" ] ~docv:"NODES"
             ~doc:"Exit non-zero if peak live metadata ever exceeds NODES.")
  in
  Cmd.v
    (Cmd.info "longrun"
       ~doc:
         "Soak one client/server protocol through a very long horizon \
          (default one million updates) in sampled chunks, reporting \
          metadata, heap, and per-op latency curves plus a final-document \
          digest.  With $(b,--gc) the continuous compaction keeps the \
          curves flat; without it they grow with the horizon — the \
          digest is identical either way (compaction is semantically \
          transparent).")
    Term.(const longrun $ soak_protocol_arg $ profile_arg $ clients_arg
          $ updates_arg $ chunk_arg $ seed_arg $ faults_arg $ gc_arg
          $ assert_flat_arg $ max_meta_arg $ json_arg)

(* --- shard-smoke ------------------------------------------------------- *)

(* Two documents, two domains (lib/run/shard_smoke): the dynamic
   witness behind the escape pass's shard_ready verdict.  Exits
   non-zero when the two-domain digests differ from the single-domain
   reference run. *)

let shard_smoke protocol profile nclients updates chunk seed gc json =
  let r =
    match
      Rlist_run.Shard_smoke.run ?gc ~now:Unix.gettimeofday
        ~protocol:(protocol_key protocol) ~profile ~nclients ~updates ~chunk
        ~seed ()
    with
    | r -> r
    | exception Invalid_argument msg ->
      Printf.eprintf "shard-smoke: %s\n" msg;
      exit 1
  in
  if json then print_endline (Rlist_run.Shard_smoke.result_to_json r)
  else Format.printf "@[<v>%a@]@." Rlist_run.Shard_smoke.pp r;
  if not r.Rlist_run.Shard_smoke.s_equal then begin
    Printf.eprintf
      "shard-smoke: GATE: two-domain digests differ from the \
       single-domain run\n";
    exit 1
  end

let shard_smoke_cmd =
  let updates_arg =
    Arg.(value & opt int 50_000
         & info [ "u"; "updates" ] ~docv:"K"
             ~doc:"Update operations per document.")
  in
  let chunk_arg =
    Arg.(value & opt int 5_000
         & info [ "chunk" ] ~docv:"K" ~doc:"Updates per sampled chunk.")
  in
  Cmd.v
    (Cmd.info "shard-smoke"
       ~doc:
         "Run two independent documents through the soak workload, once \
          sequentially and once pinned to one Domain each, and require \
          bit-identical digests — the dynamic witness that every \
          engine-reachable mutable allocation really is instance-confined \
          (the lint's shard_ready gate, DESIGN.md sec. 15).  Exits \
          non-zero on a digest mismatch.")
    Term.(const shard_smoke $ soak_protocol_arg $ profile_arg $ clients_arg
          $ updates_arg $ chunk_arg $ seed_arg $ gc_arg $ json_arg)

(* --- check (bounded model checking) ----------------------------------- *)

(* Uniform per-workload result shape shared by the client/server and
   peer-to-peer checkers, for text and JSON rendering. *)
type mc_result = {
  r_workload : string;
  r_updates : int;
  r_states : int;
  r_terminals : int;
  r_pruned_state : int;
  r_pruned_sleep : int;
  r_truncated : bool;
  r_elapsed : float;
  r_violations : (string * int * string) list;
      (** spec, witness length, rendered witness *)
}

let mc_result ~render (workload : Rlist_mc.Workload.t) elapsed
    (outcome : _ Rlist_mc.Mc.outcome) =
  let stats = outcome.Rlist_mc.Mc.stats in
  {
    r_workload = workload.Rlist_mc.Workload.wname;
    r_updates = Rlist_mc.Workload.total_updates workload;
    r_states = stats.Rlist_mc.Explore.states;
    r_terminals = stats.Rlist_mc.Explore.terminals;
    r_pruned_state = stats.Rlist_mc.Explore.pruned_state;
    r_pruned_sleep = stats.Rlist_mc.Explore.pruned_sleep;
    r_truncated = stats.Rlist_mc.Explore.truncated;
    r_elapsed = elapsed;
    r_violations =
      List.map
        (fun (v : _ Rlist_mc.Explore.violation) ->
          ( v.Rlist_mc.Explore.v_spec,
            List.length v.Rlist_mc.Explore.v_schedule,
            render v ))
        outcome.Rlist_mc.Mc.violations;
  }

let mc_check_cs (module P : Rlist_sim.Protocol_intf.PROTOCOL) ~equiv ~gc
    ~specs ~workloads ~por ~max_states ~batching =
  let module M = Rlist_mc.Mc.Cs (P) in
  List.map
    (fun workload ->
      let t0 = Unix.gettimeofday () in
      let outcome =
        M.check ?equiv ?gc ~por ~max_states ~batching ~specs ~workload ()
      in
      let elapsed = Unix.gettimeofday () -. t0 in
      mc_result workload elapsed outcome
        ~render:(Format.asprintf "%a" M.pp_violation))
    workloads

let mc_check_p2p (module P : Rlist_sim.P2p_protocol_intf.P2P_PROTOCOL) ~gc
    ~specs ~workloads ~por ~max_states ~batching =
  let module M = Rlist_mc.Mc.P2p (P) in
  List.map
    (fun workload ->
      let t0 = Unix.gettimeofday () in
      let outcome =
        M.check ?gc ~por ~max_states ~batching ~specs ~workload ()
      in
      let elapsed = Unix.gettimeofday () -. t0 in
      mc_result workload elapsed outcome
        ~render:(Format.asprintf "%a" M.pp_violation))
    workloads

let cs_protocol_module = function
  | P_css -> Some (module Jupiter_css.Protocol : Rlist_sim.Protocol_intf.PROTOCOL)
  | P_cscw -> Some (module Jupiter_cscw.Protocol)
  | P_rga -> Some (module Jupiter_rga.Protocol)
  | P_naive -> Some (module Jupiter_cscw.Naive_p2p)
  | P_pruned -> Some (module Jupiter_css.Pruned_protocol)
  | P_logoot -> Some (module Jupiter_logoot.Protocol)
  | P_sequencer -> Some (module Jupiter_css.Sequencer_protocol)
  | P_treedoc -> Some (module Jupiter_treedoc.Protocol)
  | P_css_p2p | P_ttf -> None

let mc_check protocol nclients ops specs equiv_partner gc por max_states
    batching expect_violation json =
  let specs =
    match specs with
    | [] -> Rlist_mc.Mc.all_specs
    | specs -> specs
  in
  (* The Thm 8.1 scenario is part of the client/server catalog; on the
     broadcast engines its interleaving space is orders of magnitude
     larger, so peer-to-peer protocols check the combinatorial workload
     only. *)
  let include_thm81 =
    match protocol with
    | P_css_p2p | P_ttf -> false
    | _ -> true
  in
  let workloads = Rlist_mc.Workload.catalog ~include_thm81 ~nclients ~ops () in
  (* With GC on, also enumerate the compaction-vs-delivery race: the
     workload whose interleavings fire a cycle between an update's
     generation and its delivery (client/server engines only; the p2p
     cycles are shim-level and raceless). *)
  let workloads =
    match gc, protocol with
    | Some _, (P_css_p2p | P_ttf) | None, _ -> workloads
    | Some _, _ -> workloads @ [ Rlist_mc.Workload.compaction_race ]
  in
  let equiv =
    match equiv_partner with
    | None -> None
    | Some partner -> (
      match cs_protocol_module partner with
      | Some p -> Some ("equiv", Rlist_mc.Mc.behavior_of ~batching p)
      | None ->
        prerr_endline
          "check: --equiv partner must be a client/server protocol";
        exit 1)
  in
  let results =
    match protocol with
    | P_css_p2p ->
      if equiv <> None then begin
        prerr_endline
          "check: --equiv is not supported for peer-to-peer protocols";
        exit 1
      end;
      mc_check_p2p (module Jupiter_css.Distributed_protocol) ~gc ~specs
        ~workloads ~por ~max_states ~batching
    | P_ttf ->
      if equiv <> None then begin
        prerr_endline
          "check: --equiv is not supported for peer-to-peer protocols";
        exit 1
      end;
      mc_check_p2p (module Jupiter_ttf.Adopted_protocol) ~gc ~specs
        ~workloads ~por ~max_states ~batching
    | cs -> (
      match cs_protocol_module cs with
      | Some (module P) ->
        mc_check_cs (module P) ~equiv ~gc ~specs ~workloads ~por ~max_states
          ~batching
      | None -> assert false)
  in
  let checked_specs =
    List.map Rlist_mc.Mc.spec_name specs
    @ (match equiv with Some (name, _) -> [ name ] | None -> [])
  in
  let observed spec =
    List.exists
      (fun r ->
        List.exists (fun (s, _, _) -> String.equal s spec) r.r_violations)
      results
  in
  let truncated = List.exists (fun r -> r.r_truncated) results in
  let mismatches =
    List.filter
      (fun spec ->
        let expected = List.mem spec expect_violation in
        observed spec <> expected)
      checked_specs
  in
  if json then begin
    let b = Buffer.create 1024 in
    Buffer.add_string b "{\n  \"workloads\": [\n";
    List.iteri
      (fun i r ->
        if i > 0 then Buffer.add_string b ",\n";
        Printf.bprintf b
          "    {\"workload\": %S, \"updates\": %d, \"states\": %d, \
           \"interleavings\": %d, \"pruned_state\": %d, \"pruned_sleep\": \
           %d, \"truncated\": %b, \"elapsed_s\": %.6f, \"violations\": [%s]}"
          r.r_workload r.r_updates r.r_states r.r_terminals r.r_pruned_state
          r.r_pruned_sleep r.r_truncated r.r_elapsed
          (String.concat ", "
             (List.map
                (fun (spec, nevents, _) ->
                  Printf.sprintf "{\"spec\": %S, \"events\": %d}" spec
                    nevents)
                r.r_violations)))
      results;
    Printf.bprintf b "\n  ],\n  \"expected_violations\": [%s],\n"
      (String.concat ", "
         (List.map (fun s -> Printf.sprintf "%S" s) expect_violation));
    Printf.bprintf b "  \"mismatches\": [%s],\n"
      (String.concat ", "
         (List.map (fun s -> Printf.sprintf "%S" s) mismatches));
    Printf.bprintf b "  \"pass\": %b\n}" (mismatches = [] && not truncated);
    print_endline (Buffer.contents b)
  end
  else begin
    List.iter
      (fun r ->
        Printf.printf
          "%-20s %7d states, %6d interleavings, pruned %d (cache) + %d \
           (sleep)%s, %.2fs (%.0f states/s)\n"
          r.r_workload r.r_states r.r_terminals r.r_pruned_state
          r.r_pruned_sleep
          (if r.r_truncated then ", TRUNCATED" else "")
          r.r_elapsed
          (float_of_int r.r_states /. Float.max 1e-9 r.r_elapsed);
        List.iter
          (fun (spec, _, rendered) ->
            Printf.printf "  %s spec violated:\n%s\n" spec rendered)
          r.r_violations)
      results;
    List.iter
      (fun spec ->
        if List.mem spec expect_violation then
          Printf.printf
            "GATE: expected a %s violation but none was found\n" spec
        else Printf.printf "GATE: unexpected %s violation\n" spec)
      mismatches;
    if truncated then
      print_endline "GATE: state budget exhausted (raise --max-states)";
    if mismatches = [] && not truncated then
      Printf.printf "GATE: pass (%s)\n" (String.concat ", " checked_specs)
  end;
  if mismatches <> [] || truncated then exit 1

let mc_protocol_arg =
  let protocol_conv = Arg.enum protocol_names in
  Arg.(required
       & pos 0 (some protocol_conv) None
       & info [] ~docv:"PROTOCOL"
           ~doc:"Protocol to model-check (same names as $(b,simulate)).")

let mc_clients_arg =
  Arg.(value & opt int 2
       & info [ "clients" ] ~docv:"N"
           ~doc:"Clients in the bounded workload (2-8).")

let mc_ops_arg =
  Arg.(value & opt int 2
       & info [ "ops" ] ~docv:"K" ~doc:"Script operations per client.")

let mc_spec_arg =
  let spec_conv =
    Arg.conv
      ( (fun s ->
          match Rlist_mc.Mc.spec_of_name s with
          | Some spec -> Ok spec
          | None -> Error (`Msg (Printf.sprintf "unknown spec %S" s))),
        fun ppf s -> Format.pp_print_string ppf (Rlist_mc.Mc.spec_name s) )
  in
  Arg.(value & opt_all spec_conv []
       & info [ "spec" ] ~docv:"SPEC"
           ~doc:
             "Specification to check: convergence, weak, or strong.  \
              Repeatable; default all three.")

let mc_equiv_arg =
  let protocol_conv = Arg.enum protocol_names in
  Arg.(value & opt (some protocol_conv) None
       & info [ "equiv" ] ~docv:"PROTOCOL"
           ~doc:
             "Also check behavioural equivalence against this protocol on \
              every interleaving (Theorem 7.1: css vs cscw).")

let mc_no_por_arg =
  Arg.(value & flag
       & info [ "no-por" ]
           ~doc:
             "Disable partial-order reduction and state caching (naive \
              enumeration, the cross-check baseline).")

let mc_max_states_arg =
  Arg.(value & opt int 500_000
       & info [ "max-states" ] ~docv:"COUNT"
           ~doc:"State budget; exceeding it fails the gate.")

let mc_batching_arg =
  Arg.(value & flag
       & info [ "batching" ]
           ~doc:
             "Model-check the batched delivery path: the engine coalesces \
              sends per channel and delivers through the protocols' batch \
              entry points.  Partial-order reduction stays on with a \
              batching-aware (stricter) independence relation — deliveries \
              no longer commute with the sends feeding their outbox.")

let mc_expect_arg =
  Arg.(value & opt_all string []
       & info [ "expect-violation" ] ~docv:"SPEC"
           ~doc:
             "The gate passes only if this specification IS violated \
              somewhere in the catalog — mechanizing a negative theorem \
              (Thm 8.1: $(b,--expect-violation strong) for the OT \
              protocols).  Repeatable.")

let mc_cmd =
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Bounded model checking: exhaustively enumerate every delivery \
          interleaving of a small workload catalog (a combinatorial \
          N-client script plus the fixed 3-client Theorem 8.1 scenario), \
          check convergence and the weak/strong list specifications on \
          each terminal execution, and shrink any counterexample to a \
          1-minimal witness.  Partial-order reduction (sleep sets + state \
          caching) is on by default and preserves all verdicts.")
    Term.(const mc_check $ mc_protocol_arg $ mc_clients_arg $ mc_ops_arg
          $ mc_spec_arg $ mc_equiv_arg $ gc_arg
          $ Term.app (Term.const not) mc_no_por_arg
          $ mc_max_states_arg $ mc_batching_arg $ mc_expect_arg $ json_arg)

(* --- viz ------------------------------------------------------------- *)

let viz name emit_dot =
  match Rlist_sim.Figures.find name with
  | None ->
    Printf.eprintf "unknown scenario %S; available: %s\n" name
      (String.concat ", "
         (List.map
            (fun (s : Rlist_sim.Figures.scenario) -> s.sname)
            Rlist_sim.Figures.all));
    exit 1
  | Some scenario ->
    let module E = Rlist_sim.Engine.Make (Jupiter_css.Protocol) in
    let t = E.create ~initial:scenario.initial ~nclients:scenario.nclients () in
    E.run t scenario.schedule;
    let space = Jupiter_css.Protocol.server_space (E.server t) in
    Printf.printf "%s: %s\n\n" scenario.sname scenario.description;
    print_string (Jupiter_css.Render.to_ascii space ~initial:scenario.initial);
    if emit_dot then begin
      let path = scenario.sname ^ ".dot" in
      match open_out path with
      | oc ->
        output_string oc
          (Jupiter_css.Render.to_dot space ~initial:scenario.initial
             ~name:scenario.sname);
        close_out oc;
        Printf.printf "\nwrote %s\n" path
      | exception Sys_error msg ->
        Printf.eprintf "cannot write %s: %s\n" path msg;
        exit 1
    end

let viz_cmd =
  let name_arg =
    Arg.(value & pos 0 string "figure7"
         & info [] ~docv:"SCENARIO" ~doc:"Figure scenario name.")
  in
  let dot_arg =
    Arg.(value & flag & info [ "dot" ] ~doc:"Also write a Graphviz .dot file.")
  in
  Cmd.v
    (Cmd.info "viz"
       ~doc:"Render the CSS n-ary ordered state-space of a figure scenario.")
    Term.(const viz $ name_arg $ dot_arg)

(* --- record / replay --------------------------------------------------- *)

let record profile nclients updates seed path =
  record_schedule ~profile ~nclients ~updates ~seed ~path

let record_cmd =
  let path_arg =
    Arg.(value & opt string "session.sched"
         & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output schedule file.")
  in
  Cmd.v
    (Cmd.info "record"
       ~doc:
         "Run a random session under the CSS protocol and save the concrete \
          schedule for later replay.")
    Term.(const record $ profile_arg $ clients_arg $ updates_arg $ seed_arg
          $ path_arg)

(* Deterministic replay of a flight recording: re-execute the run
   from the spec stored in the header (runs are seed-deterministic;
   the decision ring is the witness, not the driver) and check the
   fresh outcome digest and decision stream against the recording. *)

let do_shrink (recording : Rlist_obs.Recorder.recording)
    (spec : Recorded.spec) path =
  let aborted =
    List.assoc_opt "aborted" recording.Rlist_obs.Recorder.digest
  in
  match Recorded.schedule_of_recording recording with
  | Error msg ->
    Printf.eprintf "shrink: %s\n" msg;
    exit 1
  | Ok schedule ->
    let choice = List.assoc spec.Recorded.protocol protocol_names in
    let sat = Rlist_spec.Check.is_satisfied in
    let still_fails events =
      match Rlist_sim.Schedule.validate ~nclients:spec.Recorded.nclients
              events with
      | Error _ -> false
      | Ok () -> (
        let file =
          {
            Rlist_sim.Schedule_text.nclients = spec.Recorded.nclients;
            initial = Document.empty;
            events;
          }
        in
        match replay_protocol choice file, aborted with
        | s, None ->
          not (s.s_converged && sat s.s_convergence && sat s.s_weak)
        | _, Some _ -> false
        | exception Invalid_argument msg ->
          (* For an abort witness, a subset counts as failing only
             when it dies with the identical diagnostic — removing
             context changes positions and op ids, and a different
             crash is a different bug.  Engine-level errors mean the
             subset is not even a feasible schedule. *)
          (match aborted with
          | Some original -> String.equal msg original
          | None -> not (String.starts_with ~prefix:"Engine" msg)))
    in
    if not (still_fails schedule) then
      Printf.printf
        "shrink: the failure does not reproduce on perfect channels \
         (network-timing dependent); nothing to minimize\n"
    else begin
      let minimized = Rlist_mc.Witness.shrink ~still_fails schedule in
      let out = path ^ ".min.sched" in
      (try
         Rlist_sim.Schedule_text.save ~path:out
           ~nclients:spec.Recorded.nclients minimized
       with Sys_error msg ->
         Printf.eprintf "cannot write %s: %s\n" out msg;
         exit 1);
      Printf.printf "shrink: %d events -> %d minimal; wrote %s\n"
        (List.length schedule) (List.length minimized) out
    end

let pp_verdict path (v : Recorded.verdict) =
  let spec = v.Recorded.v_spec in
  Printf.printf "recording:   %s\n" path;
  Printf.printf "protocol:    %s  profile: %s  clients: %d  updates: %d  \
                 seed: %d\n"
    spec.Recorded.protocol
    (Rlist_workload.Workload.profile_name spec.Recorded.profile)
    spec.Recorded.nclients spec.Recorded.updates spec.Recorded.seed;
  Printf.printf "faults:      %s  shim: %b  rto: %d  batch: %b  \
                 fastpath: %b  gc: %s\n"
    (Rlist_net.Faults.to_string spec.Recorded.faults)
    spec.Recorded.shim spec.Recorded.rto spec.Recorded.batching
    spec.Recorded.fastpath
    (match spec.Recorded.gc with
    | None -> "off"
    | Some p -> Rlist_gc.to_string p);
  Printf.printf "decisions:   %d recorded, %d replayed\n"
    v.Recorded.v_total_expected v.Recorded.v_total_got;
  (match v.Recorded.v_mismatches with
  | [] -> Printf.printf "digest:      all keys match\n"
  | ms ->
    Printf.printf "digest:      %d mismatch(es)\n" (List.length ms);
    List.iteri
      (fun i (k, expected, got) ->
        if i < 8 then
          Printf.printf "  %-24s expected %s, got %s\n" k expected got)
      ms);
  (match v.Recorded.v_divergence with
  | None -> ()
  | Some (i, expected, got) ->
    Printf.printf "divergence:  decision %d: expected %S, got %S\n" i
      expected got);
  if v.Recorded.v_ok then
    Printf.printf "replay:      deterministic (bit-identical)\n"
  else Printf.printf "replay:      DIVERGED\n"

let verdict_json path (v : Recorded.verdict) =
  let b = Buffer.create 512 in
  let spec = v.Recorded.v_spec in
  Printf.bprintf b
    "{\"recording\": %S, \"protocol\": %S, \"seed\": %d, \
     \"decisions_recorded\": %d, \"decisions_replayed\": %d, \
     \"mismatches\": ["
    path spec.Recorded.protocol spec.Recorded.seed
    v.Recorded.v_total_expected v.Recorded.v_total_got;
  List.iteri
    (fun i (k, expected, got) ->
      if i > 0 then Buffer.add_string b ", ";
      Printf.bprintf b "{\"key\": %S, \"expected\": %S, \"got\": %S}" k
        expected got)
    v.Recorded.v_mismatches;
  Buffer.add_string b "], \"divergence\": ";
  (match v.Recorded.v_divergence with
  | None -> Buffer.add_string b "null"
  | Some (i, expected, got) ->
    Printf.bprintf b
      "{\"index\": %d, \"expected\": %S, \"got\": %S}" i expected got);
  Printf.bprintf b ", \"ok\": %b}" v.Recorded.v_ok;
  Buffer.contents b

let load_recording path =
  match Rlist_obs.Recorder.load path with
  | recording -> recording
  | exception Rlist_obs.Recorder.Corrupt msg ->
    Printf.eprintf "replay: %s: %s\n" path msg;
    exit 1
  | exception Sys_error msg ->
    Printf.eprintf "replay: %s\n" msg;
    exit 1

let replay_recording path trace_out json shrink =
  let recording = load_recording path in
  let oc =
    match trace_out with
    | None -> None
    | Some tp -> (
      try Some (open_out tp)
      with Sys_error msg ->
        Printf.eprintf "cannot open %s: %s\n" tp msg;
        exit 1)
  in
  let obs =
    Option.map (fun oc -> Rlist_obs.Obs.make ~sink:(Rlist_obs.Sink.channel oc) ()) oc
  in
  match Recorded.verify ?obs recording with
  | exception Invalid_argument msg ->
    Option.iter close_out oc;
    (* The original run aborted too iff the stored digest says so with
       the same message — that is this path's bit-identical verdict. *)
    (match List.assoc_opt "aborted" recording.Rlist_obs.Recorder.digest with
    | Some original when String.equal original msg ->
      Printf.printf "replay:      reproduced the recorded abort: %s\n" msg;
      if shrink then begin
        match Recorded.spec_of_header recording.Rlist_obs.Recorder.header with
        | Ok spec -> do_shrink recording spec path
        | Error msg ->
          Printf.eprintf "shrink: %s\n" msg;
          exit 1
      end
    | _ ->
      Printf.printf "replay:      DIVERGED (fresh abort: %s)\n" msg;
      exit 1)
  | Error msg ->
    Option.iter close_out oc;
    Printf.eprintf "replay: %s\n" msg;
    exit 1
  | Ok v ->
    Option.iter close_out oc;
    if json then print_endline (verdict_json path v) else pp_verdict path v;
    if shrink then do_shrink recording v.Recorded.v_spec path;
    if not v.Recorded.v_ok then exit 1

let replay protocol path trace_out json shrink =
  if Rlist_obs.Recorder.is_recording path then
    replay_recording path trace_out json shrink
  else begin
    if Option.is_some trace_out || shrink then begin
      Printf.eprintf
        "replay: --trace/--shrink apply to flight recordings (.jfr), not \
         schedule files\n";
      exit 1
    end;
    match Rlist_sim.Schedule_text.load ~path with
    | Error msg ->
      Printf.eprintf "cannot load %s: %s\n" path msg;
      exit 1
    | Ok file ->
      (match replay_protocol protocol file with
      | summary -> pp_summary summary
      | exception Invalid_argument msg ->
        (* Replaying a Jupiter schedule on a non-equivalent protocol can
           go out of bounds; report rather than crash. *)
        Printf.printf "replay aborted: %s\n" msg;
        exit 1)
  end

let replay_cmd =
  let path_arg =
    Arg.(value & pos 0 string "session.sched"
         & info [] ~docv:"FILE"
             ~doc:
               "Schedule file, or a flight recording (.jfr) dumped by \
                $(b,soak)/$(b,fuzz).")
  in
  let trace_arg =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:
               "While re-executing a recording, write the full JSONL event \
                trace to FILE.")
  in
  let shrink_arg =
    Arg.(value & flag
         & info [ "shrink" ]
             ~doc:
               "After replaying a failing recording, extract its engine \
                schedule and ddmin-shrink it to a 1-minimal failing \
                schedule (written next to the recording).")
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Replay a recorded schedule under a protocol, or re-execute a \
          flight recording bit-identically and verify the outcome digest \
          and decision stream against it.  Exits non-zero when the replay \
          diverges.")
    Term.(const replay $ protocol_arg $ path_arg $ trace_arg $ json_flag
          $ shrink_arg)

(* --- report ------------------------------------------------------------ *)

(* Offline trace analysis: stitch per-op causal spans out of a JSONL
   trace (or out of a recording, by re-executing it with the tracer
   on) and report convergence lag, staleness, transform attribution,
   and the wire timeline. *)

let events_of_jsonl path =
  let ic =
    try open_in path
    with Sys_error msg ->
      Printf.eprintf "report: %s\n" msg;
      exit 1
  in
  let events = ref [] in
  (try
     while true do
       match Rlist_obs.Event.of_jsonl (input_line ic) with
       | Some (_, e) -> events := e :: !events
       | None -> ()
     done
   with End_of_file -> close_in ic);
  List.rev !events

let report path json =
  let events =
    if Rlist_obs.Recorder.is_recording path then begin
      let recording = load_recording path in
      let sink = Rlist_obs.Sink.memory () in
      let obs = Rlist_obs.Obs.make ~sink () in
      match Recorded.verify ~obs recording with
      | Error msg ->
        Printf.eprintf "report: %s\n" msg;
        exit 1
      | exception Invalid_argument msg ->
        Printf.eprintf "report: the recorded run aborts (%s); no trace\n"
          msg;
        exit 1
      | Ok v ->
        if not v.Recorded.v_ok then
          Printf.eprintf
            "report: warning: replay diverged from the recording; the \
             report reflects the fresh run\n";
        Rlist_obs.Sink.events sink
    end
    else events_of_jsonl path
  in
  if events = [] then begin
    Printf.eprintf "report: no events in %s\n" path;
    exit 1
  end;
  let summary = Rlist_obs.Spans.summarize events in
  if json then print_endline (Rlist_obs.Spans.summary_to_json summary)
  else Format.printf "%a@." Rlist_obs.Spans.pp_summary summary

let report_cmd =
  let path_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"FILE"
             ~doc:
               "A JSONL trace (from $(b,trace) or $(b,replay --trace)) or \
                a flight recording (.jfr).")
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Analyze a trace offline: per-op convergence-lag percentiles, \
          per-replica staleness, transform-cost attribution, send/\
          retransmission amplification, and a wire-fault timeline, as \
          text or JSON.")
    Term.(const report $ path_arg $ json_flag)

(* --- stats ------------------------------------------------------------ *)

let stats_json ~source (st : Jupiter_css.Analysis.stats) ~lemmas ~fp =
  let widths =
    String.concat ","
      (List.map (fun (l, w) -> Printf.sprintf "[%d,%d]" l w) st.width_per_level)
  in
  Printf.sprintf
    "{\"source\":%S,\"states\":%d,\"transitions\":%d,\"depth\":%d,\
     \"max_branching\":%d,\"nop_forms\":%d,\"width_per_level\":[%s],\
     \"lemmas_ok\":%b,\"fastpath\":{\"enabled\":%b,\"context_hits\":%d,\
     \"append_hits\":%d,\"generic_squares\":%d}}"
    source st.states st.transitions st.depth st.max_branching st.nop_forms
    widths lemmas fp.Rlist_ot.Fastpath.enabled
    fp.Rlist_ot.Fastpath.context_hits fp.Rlist_ot.Fastpath.append_hits
    fp.Rlist_ot.Fastpath.generic_squares

let stats name schedule_file json =
  let build source initial nclients events =
    let fp = Rlist_ot.Fastpath.create () in
    let module E = Rlist_sim.Engine.Make (Jupiter_css.Protocol) in
    let t = E.create ~initial ~fastpath:fp ~nclients () in
    E.run t events;
    let space = Jupiter_css.Protocol.server_space (E.server t) in
    let st = Jupiter_css.Analysis.stats space in
    let lemmas = Jupiter_css.Analysis.check_all space ~nclients ~initial in
    if json then
      print_endline (stats_json ~source st ~lemmas:(Result.is_ok lemmas) ~fp)
    else begin
      Format.printf "%a@." Jupiter_css.Analysis.pp_stats st;
      match lemmas with
      | Ok () ->
        print_endline "structural lemmas (6.1/6.3/8.4/8.5/8.7): all hold"
      | Error e -> Printf.printf "structural lemma violated: %s\n" e
    end;
    if Result.is_error lemmas then exit 1
  in
  match schedule_file with
  | Some path -> (
    match Rlist_sim.Schedule_text.load ~path with
    | Error msg ->
      Printf.eprintf "cannot load %s: %s\n" path msg;
      exit 1
    | Ok file -> build path file.initial file.nclients file.events)
  | None -> (
    match Rlist_sim.Figures.find name with
    | None ->
      Printf.eprintf "unknown scenario %S\n" name;
      exit 1
    | Some scenario ->
      build scenario.sname scenario.initial scenario.nclients
        scenario.schedule)

let stats_cmd =
  let name_arg =
    Arg.(value & pos 0 string "figure7"
         & info [] ~docv:"SCENARIO" ~doc:"Figure scenario name.")
  in
  let file_arg =
    Arg.(value & opt (some string) None
         & info [ "schedule" ] ~docv:"FILE"
             ~doc:"Analyze a recorded schedule file instead of a figure.")
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Structural statistics and lemma checks of the CSS state-space \
          built by a figure scenario or a recorded schedule.  Exits \
          non-zero if a structural lemma fails.")
    Term.(const stats $ name_arg $ file_arg $ json_flag)

(* --- trace ------------------------------------------------------------ *)

(* Replay a figure scenario with the observability layer attached and
   the JSONL sink pointed at [oc].  The CSS run additionally wires
   [State_space.set_observer] on every replica, so the trace shows the
   state-space growing level by level (the paper's Figure 4). *)
let trace_css obs ~batching ~fastpath (scenario : Rlist_sim.Figures.scenario) =
  let module E = Rlist_sim.Engine.Make (Jupiter_css.Protocol) in
  let t =
    E.create ~initial:scenario.initial ~batching ~fastpath
      ~nclients:scenario.nclients ()
  in
  E.attach_obs t obs;
  let wire name set =
    set (fun ~level ~states ~transitions ~ots ->
        ignore ots;
        if Rlist_obs.Obs.tracing obs then
          Rlist_obs.Obs.emit obs
            (Rlist_obs.Event.State_space_grow
               { replica = name; level; states; transitions }))
  in
  wire "server" (Jupiter_css.Protocol.server_set_space_observer (E.server t));
  for i = 1 to scenario.nclients do
    wire
      ("c" ^ string_of_int i)
      (Jupiter_css.Protocol.client_set_space_observer (E.client t i))
  done;
  E.run t scenario.schedule;
  let space = Jupiter_css.Protocol.server_space (E.server t) in
  let st = Jupiter_css.Analysis.stats space in
  E.converged t, E.total_ot_count t, E.total_metadata_size t, Some st

let trace_generic (type c s c2s s2c)
    (module P : Rlist_sim.Protocol_intf.PROTOCOL
      with type client = c
       and type server = s
       and type c2s = c2s
       and type s2c = s2c) obs ~batching ~fastpath
    (scenario : Rlist_sim.Figures.scenario) =
  let module E = Rlist_sim.Engine.Make (P) in
  let t =
    E.create ~initial:scenario.initial ~batching ~fastpath
      ~nclients:scenario.nclients ()
  in
  E.attach_obs t obs;
  E.run t scenario.schedule;
  E.converged t, E.total_ot_count t, E.total_metadata_size t, None

let trace name protocol batching fastpath out_file json =
  match Rlist_sim.Figures.find name with
  | None ->
    Printf.eprintf "unknown scenario %S; available: %s\n" name
      (String.concat ", "
         (List.map
            (fun (s : Rlist_sim.Figures.scenario) -> s.sname)
            Rlist_sim.Figures.all));
    exit 1
  | Some scenario ->
    let oc, close =
      match out_file with
      | None -> stdout, fun () -> flush stdout
      | Some path -> (
        try
          let oc = open_out path in
          oc, fun () -> close_out oc
        with Sys_error msg ->
          Printf.eprintf "cannot open %s: %s\n" path msg;
          exit 1)
    in
    let sink = Rlist_obs.Sink.channel oc in
    let obs = Rlist_obs.Obs.make ~sink () in
    let fp = Rlist_ot.Fastpath.create ~enabled:fastpath () in
    let run (converged, ots, metadata, space_stats) =
      publish_fastpath fp obs.Rlist_obs.Obs.metrics;
      let space_json =
        match space_stats with
        | None -> ""
        | Some (st : Jupiter_css.Analysis.stats) ->
          Printf.sprintf
            ",\"space_states\":%d,\"space_transitions\":%d,\"space_depth\":%d"
            st.states st.transitions st.depth
      in
      if json then
        output_string oc
          (Printf.sprintf
             "{\"type\":\"summary\",\"scenario\":%S,\"converged\":%b,\
              \"total_transforms\":%d,\"total_metadata\":%d%s,\
              \"metrics\":%s}\n"
             scenario.sname converged ots metadata space_json
             (Rlist_obs.Obs.metrics_json obs))
      else Format.eprintf "%a@." Rlist_obs.Obs.report obs;
      close ();
      if not converged then exit 1
    in
    (match protocol with
    | P_css -> run (trace_css obs ~batching ~fastpath:fp scenario)
    | P_cscw ->
      run (trace_generic (module Jupiter_cscw.Protocol) obs ~batching ~fastpath:fp
             scenario)
    | P_rga ->
      run (trace_generic (module Jupiter_rga.Protocol) obs ~batching ~fastpath:fp scenario)
    | P_naive ->
      run (trace_generic (module Jupiter_cscw.Naive_p2p) obs ~batching ~fastpath:fp
             scenario)
    | P_pruned ->
      run (trace_generic (module Jupiter_css.Pruned_protocol) obs ~batching ~fastpath:fp
             scenario)
    | P_logoot ->
      run (trace_generic (module Jupiter_logoot.Protocol) obs ~batching ~fastpath:fp
             scenario)
    | P_sequencer ->
      run (trace_generic (module Jupiter_css.Sequencer_protocol) obs
             ~batching ~fastpath:fp scenario)
    | P_treedoc ->
      run (trace_generic (module Jupiter_treedoc.Protocol) obs ~batching ~fastpath:fp
             scenario)
    | P_css_p2p | P_ttf ->
      Printf.eprintf
        "trace: figure schedules are client/server shaped; peer-to-peer \
         protocols cannot replay them\n";
      exit 1)

let trace_cmd =
  let name_arg =
    Arg.(value & pos 0 string "figure2"
         & info [] ~docv:"SCENARIO" ~doc:"Figure scenario name.")
  in
  let out_arg =
    Arg.(value & opt (some string) None
         & info [ "o"; "output" ] ~docv:"FILE"
             ~doc:"Write the JSONL trace to FILE instead of stdout.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Replay a figure scenario with metrics and structured tracing \
          enabled; emits one JSON object per generate/send/deliver/apply \
          event (and per state-space growth step under css).  With \
          $(b,--json), a final summary object carries the aggregated \
          counters; otherwise a human-readable metrics report goes to \
          stderr.")
    Term.(const trace $ name_arg $ protocol_arg $ batch_arg $ fastpath_arg
          $ out_arg $ json_flag)

(* --- figures ---------------------------------------------------------- *)

let figures () =
  List.iter
    (fun (scenario : Rlist_sim.Figures.scenario) ->
      let broken = scenario.sname = "figure8" in
      let verdicts =
        if broken then begin
          let module E = Rlist_sim.Engine.Make (Jupiter_cscw.Naive_p2p) in
          let t = E.create ~initial:scenario.initial
                    ~nclients:scenario.nclients () in
          E.run t scenario.schedule;
          let trace = E.trace t in
          ( E.converged t,
            Rlist_spec.Convergence.check trace,
            Rlist_spec.Weak_spec.check trace,
            Rlist_spec.Strong_spec.check trace,
            Document.to_string (E.client_document t 1) )
        end
        else begin
          let module E = Rlist_sim.Engine.Make (Jupiter_css.Protocol) in
          let t = E.create ~initial:scenario.initial
                    ~nclients:scenario.nclients () in
          E.run t scenario.schedule;
          let trace = E.trace t in
          ( E.converged t,
            Rlist_spec.Convergence.check trace,
            Rlist_spec.Weak_spec.check trace,
            Rlist_spec.Strong_spec.check trace,
            Document.to_string (E.server_document t) )
        end
      in
      let converged, conv, weak, strong, final = verdicts in
      let protocol = if broken then "naive" else "css" in
      let show r = if Rlist_spec.Check.is_satisfied r then "yes" else "NO" in
      Printf.printf "%-8s [%-5s] converged=%-5b final=%-10S conv=%-3s weak=%-3s strong=%-3s\n"
        scenario.sname protocol converged final (show conv) (show weak)
        (show strong))
    Rlist_sim.Figures.all

let figures_cmd =
  Cmd.v
    (Cmd.info "figures"
       ~doc:"Replay every paper figure and print a verdict summary.")
    Term.(const figures $ const ())

let () =
  let info =
    Cmd.info "jupiter-sim" ~version:"1.0.0"
      ~doc:
        "Simulate and check replicated-list protocols (CSS/CSCW Jupiter, \
         RGA, and a broken OT foil)."
  in
  exit (Cmd.eval (Cmd.group info [ simulate_cmd; mc_cmd; fuzz_cmd; soak_cmd;
            longrun_cmd; shard_smoke_cmd; viz_cmd; figures_cmd; record_cmd;
            replay_cmd;
            report_cmd; stats_cmd; trace_cmd ]))
