(* The experiment harness: regenerates every figure of the paper and
   measures every quantitative claim, printing the tables and series
   recorded in EXPERIMENTS.md. *)

open Rlist_model
module Css = Rlist_sim.Engine.Make (Jupiter_css.Protocol)
module Cscw = Rlist_sim.Engine.Make (Jupiter_cscw.Protocol)
module Rga = Rlist_sim.Engine.Make (Jupiter_rga.Protocol)
module Naive = Rlist_sim.Engine.Make (Jupiter_cscw.Naive_p2p)
module Pruned = Rlist_sim.Engine.Make (Jupiter_css.Pruned_protocol)
module Logoot = Rlist_sim.Engine.Make (Jupiter_logoot.Protocol)
module Seq = Rlist_sim.Engine.Make (Jupiter_css.Sequencer_protocol)

let section title = Printf.printf "\n=== %s ===\n%!" title

let run_css_random ?(nclients = 4) ~updates ~seed () =
  let t = Css.create ~nclients () in
  let rng = Random.State.make [| seed |] in
  let params =
    { Rlist_sim.Schedule.default_params with updates; deliver_bias = 0.55 }
  in
  let schedule = Css.run_random t ~rng ~params in
  t, schedule

(* --- Figures ---------------------------------------------------------- *)

let verdict_string check trace =
  if Rlist_spec.Check.is_satisfied (check trace) then "yes" else "NO"

let figure_f1 () =
  section "F1 (paper Fig. 1): OT motivation — \"efecte\" -> \"effect\"";
  let s = Rlist_sim.Figures.figure1 in
  let t = Css.create ~initial:s.initial ~nclients:s.nclients () in
  Css.run t s.schedule;
  Printf.printf "  c1=%S c2=%S server=%S converged=%b\n"
    (Document.to_string (Css.client_document t 1))
    (Document.to_string (Css.client_document t 2))
    (Document.to_string (Css.server_document t))
    (Css.converged t);
  Printf.printf "  paper: both replicas reach \"effect\" after OT\n"

let space_summary s t =
  let space = Jupiter_css.Protocol.server_space (Css.server t) in
  let equal_everywhere =
    List.for_all
      (fun i ->
        Jupiter_css.State_space.equal space
          (Jupiter_css.Protocol.client_space (Css.client t i)))
      (List.init (Css.nclients t) (fun i -> i + 1))
  in
  Printf.printf
    "  %s: states=%d transitions=%d, all replica spaces equal (Prop 6.6)=%b\n"
    s
    (Jupiter_css.State_space.num_states space)
    (Jupiter_css.State_space.num_transitions space)
    equal_everywhere

let figure_f2_f4 () =
  section "F2+F4 (paper Figs. 2, 4): one compact space, many paths";
  let s = Rlist_sim.Figures.figure2 in
  let t = Css.create ~initial:s.initial ~nclients:s.nclients () in
  Css.run t s.schedule;
  space_summary "figure4 space" t;
  Printf.printf "  paper: 7 states {0,1,2,3,12,13,123}, no state {23}\n"

let figure_f3 () =
  section "F3 (paper Fig. 3): Algorithm 1's iterated transformation";
  let s = Rlist_sim.Figures.figure3 in
  let t = Css.create ~initial:s.initial ~nclients:s.nclients () in
  Css.run t s.schedule;
  space_summary "figure3 space" t;
  Printf.printf
    "  paper: o3 transforms along L = <o1, o2{1}, o4{1,2}> (3 OT steps)\n"

let figure_f6 () =
  section "F6 (paper Fig. 6): the CSCW paper's 4-operation schedule";
  let s = Rlist_sim.Figures.figure6 in
  let t = Css.create ~initial:s.initial ~nclients:s.nclients () in
  Css.run t s.schedule;
  space_summary "figure6 space" t

let figure_f7 () =
  section "F7 (paper Fig. 7, Thm 8.1): Jupiter violates the strong spec";
  let s = Rlist_sim.Figures.figure7 in
  let t = Css.create ~initial:s.initial ~nclients:s.nclients () in
  Css.run t s.schedule;
  let trace = Css.trace t in
  let events = Rlist_spec.Trace.events trace in
  let result i = Document.to_string (List.nth events i).Rlist_spec.Event.result in
  Printf.printf "  w13 (client 2 after Ins(a,0)) = %S   (paper: \"ax\")\n"
    (result 2);
  Printf.printf "  w14 (client 3 after Ins(b,1)) = %S   (paper: \"xb\")\n"
    (result 3);
  Printf.printf "  final (all replicas)          = %S   (paper: \"ba\")\n"
    (result 4);
  Printf.printf "  convergence=%s weak=%s strong=%s   (paper: yes yes NO)\n"
    (verdict_string Rlist_spec.Convergence.check trace)
    (verdict_string Rlist_spec.Weak_spec.check trace)
    (verdict_string Rlist_spec.Strong_spec.check trace)

let figure_f8 () =
  section "F8 (paper Fig. 8, Ex. 8.1): the incorrect protocol diverges";
  let s = Rlist_sim.Figures.figure8 in
  let t = Naive.create ~initial:s.initial ~nclients:s.nclients () in
  Naive.run t s.schedule;
  let trace = Naive.trace t in
  Printf.printf "  c1=%S c2=%S c3=%S   (paper: \"ayxc\" vs \"axyc\")\n"
    (Document.to_string (Naive.client_document t 1))
    (Document.to_string (Naive.client_document t 2))
    (Document.to_string (Naive.client_document t 3));
  Printf.printf "  convergence=%s weak=%s   (paper: NO NO)\n"
    (verdict_string Rlist_spec.Convergence.check trace)
    (verdict_string Rlist_spec.Weak_spec.check trace)

(* --- C1: compactness / metadata -------------------------------------- *)

let c1_metadata () =
  section
    "C1 (Prop 6.6): metadata — one compact CSS space vs CSCW's 2n 2D spaces";
  Printf.printf
    "  %8s %8s | %12s %12s | %12s %12s | %8s %8s\n"
    "clients" "updates" "css(single)" "css(total)" "cscw(server)"
    "cscw(total)" "rga" "logoot";
  List.iter
    (fun nclients ->
      List.iter
        (fun updates ->
          let css, schedule = run_css_random ~nclients ~updates ~seed:7 () in
          let cscw = Cscw.create ~nclients () in
          Cscw.run cscw schedule;
          let params =
            {
              Rlist_sim.Schedule.default_params with
              updates;
              deliver_bias = 0.55;
            }
          in
          let rga = Rga.create ~nclients () in
          (let rng = Random.State.make [| 7 |] in
           ignore (Rga.run_random rga ~rng ~params));
          let logoot = Logoot.create ~nclients () in
          (let rng = Random.State.make [| 7 |] in
           ignore (Logoot.run_random logoot ~rng ~params));
          Printf.printf "  %8d %8d | %12d %12d | %12d %12d | %8d %8d\n"
            nclients updates
            (Css.server_metadata_size css)
            (Css.total_metadata_size css)
            (Cscw.server_metadata_size cscw)
            (Cscw.total_metadata_size cscw)
            (Rga.total_metadata_size rga)
            (Logoot.total_metadata_size logoot))
        [ 100; 200 ])
    [ 2; 4; 8; 16 ];
  Printf.printf
    "  claim: the CSS system needs ONE space (css(single)); the CSCW system \
     needs all 2n dispersed spaces (cscw(total)).\n"

(* --- C2: redundant OT elimination ------------------------------------- *)

let c2_ot_counts () =
  section "C2 (Sec 7.2): CSCW eliminates redundant client-side OTs";
  Printf.printf "  %8s %8s | %10s %12s | %10s %12s | %6s\n" "clients"
    "updates" "css(srv)" "css(clients)" "cscw(srv)" "cscw(clients)" "ratio";
  List.iter
    (fun nclients ->
      List.iter
        (fun updates ->
          let css, schedule = run_css_random ~nclients ~updates ~seed:11 () in
          let cscw = Cscw.create ~nclients () in
          Cscw.run cscw schedule;
          let css_clients =
            Css.total_ot_count css - Css.server_ot_count css
          in
          let cscw_clients =
            Cscw.total_ot_count cscw - Cscw.server_ot_count cscw
          in
          Printf.printf "  %8d %8d | %10d %12d | %10d %12d | %6.2f\n" nclients
            updates (Css.server_ot_count css) css_clients
            (Cscw.server_ot_count cscw)
            cscw_clients
            (float_of_int css_clients
            /. float_of_int (max 1 cscw_clients)))
        [ 100; 200 ])
    [ 2; 4; 8 ];
  Printf.printf
    "  claim: css(clients) >> cscw(clients); the servers perform comparable \
     work.\n"

(* --- C3: equivalence and convergence at scale ------------------------- *)

let c3_equivalence () =
  section "C3 (Thms 6.7, 7.1): convergence + equivalence across seeds";
  let seeds = 20 and updates = 150 in
  let equal = ref 0 and converged = ref 0 and weak = ref 0 in
  let t0 = Harness.now_s () in
  for seed = 1 to seeds do
    let css, schedule = run_css_random ~updates ~seed () in
    let cscw = Cscw.create ~nclients:4 () in
    Cscw.run cscw schedule;
    let b1 = Css.behavior css and b2 = Cscw.behavior cscw in
    if
      List.length b1 = List.length b2
      && List.for_all2
           (fun (r1, d1) (r2, d2) ->
             Replica_id.equal r1 r2 && Document.equal d1 d2)
           b1 b2
    then incr equal;
    if Css.converged css && Cscw.converged cscw then incr converged;
    if
      Rlist_spec.Check.is_satisfied
        (Rlist_spec.Weak_spec.check (Css.trace css))
    then incr weak
  done;
  let dt = Harness.now_s () -. t0 in
  Printf.printf
    "  %d seeds x %d updates x 4 clients: behaviours equal %d/%d, converged \
     %d/%d, weak spec %d/%d  (%.2fs)\n"
    seeds updates !equal seeds !converged seeds !weak seeds dt

(* --- C5: metadata growth over execution length ------------------------ *)

let c5_growth () =
  section "C5 (future-work probe): metadata growth over execution length";
  Printf.printf "  %8s | %12s %12s %12s | %12s\n" "updates" "css(single)"
    "cscw(total)" "rga(total)" "css(OTs)";
  List.iter
    (fun updates ->
      let css, schedule = run_css_random ~nclients:4 ~updates ~seed:3 () in
      let cscw = Cscw.create ~nclients:4 () in
      Cscw.run cscw schedule;
      let rga = Rga.create ~nclients:4 () in
      (let rng = Random.State.make [| 3 |] in
       let params =
         { Rlist_sim.Schedule.default_params with updates; deliver_bias = 0.55 }
       in
       ignore (Rga.run_random rga ~rng ~params));
      Printf.printf "  %8d | %12d %12d %12d | %12d\n" updates
        (Css.server_metadata_size css)
        (Cscw.total_metadata_size cscw)
        (Rga.total_metadata_size rga)
        (Css.total_ot_count css))
    [ 50; 100; 200; 400 ];
  Printf.printf
    "  claim: without garbage collection the OT state-spaces grow \
     super-linearly under concurrency; RGA grows linearly (plus \
     tombstones).\n"

(* --- C6: spec-checking the hotspot workload --------------------------- *)

let c6_hotspot_strong_violations () =
  section
    "C6 (Thm 8.1 at scale): strong-spec violations arise naturally under \
     contention";
  let seeds = 30 in
  let strong_violations = ref 0 and weak_violations = ref 0 in
  for seed = 1 to seeds do
    let nclients = 3 in
    let t = Css.create ~nclients () in
    let rng = Random.State.make [| seed; 77 |] in
    let profile = Rlist_workload.Workload.Hotspot in
    let intent =
      Rlist_workload.Workload.intent_generator profile ~nclients ~rng
    in
    let params = Rlist_workload.Workload.params profile ~updates:40 in
    ignore (Css.run_random ~intent t ~rng ~params);
    let trace = Css.trace t in
    if not (Rlist_spec.Check.is_satisfied (Rlist_spec.Strong_spec.check trace))
    then incr strong_violations;
    if not (Rlist_spec.Check.is_satisfied (Rlist_spec.Weak_spec.check trace))
    then incr weak_violations
  done;
  Printf.printf
    "  hotspot workload, %d seeds: strong violated %d times, weak violated \
     %d times\n"
    seeds !strong_violations !weak_violations;
  Printf.printf
    "  claim: Jupiter's strong-spec violations are not an artifact of the \
     hand-crafted Figure 7; weak holds always.\n"

(* --- C7: the pruning ablation ------------------------------------------ *)

let c7_pruning () =
  section
    "C7 (future work, answered): acknowledgement-driven pruning bounds the \
     space";
  Printf.printf "  %8s %8s | %12s %14s | %10s\n" "updates" "bias"
    "css(single)" "pruned(server)" "pruned_to";
  List.iter
    (fun deliver_bias ->
      List.iter
        (fun updates ->
          let params =
            { Rlist_sim.Schedule.default_params with updates; deliver_bias }
          in
          let css = Css.create ~nclients:4 () in
          let rng = Random.State.make [| 3 |] in
          let schedule = Css.run_random css ~rng ~params in
          let pruned = Pruned.create ~nclients:4 () in
          Pruned.run pruned schedule;
          Printf.printf "  %8d %8.2f | %12d %14d | %10d\n" updates
            deliver_bias
            (Css.server_metadata_size css)
            (Pruned.server_metadata_size pruned)
            (Jupiter_css.Pruned_protocol.server_pruned_to
               (Pruned.server pruned)))
        [ 100; 200; 400 ])
    [ 0.55; 0.85 ];
  Printf.printf
    "  claim: pruning trims everything below the stable prefix.  Under heavy \
     concurrency (bias 0.55) acknowledgements lag and the stable prefix \
     advances slowly; with prompt delivery (bias 0.85) the space stays \
     proportional to the in-flight window instead of the whole history.\n"

(* --- C8: the cost of the center ----------------------------------------- *)

let c8_center_cost () =
  section
    "C8 (toward distributed CSS): what the center must do, per protocol";
  Printf.printf "  %14s | %12s %16s | %10s\n" "protocol" "center OTs"
    "center metadata" "converged";
  let updates = 200 in
  let css, schedule = run_css_random ~nclients:4 ~updates ~seed:5 () in
  let cscw = Cscw.create ~nclients:4 () in
  Cscw.run cscw schedule;
  let seq = Seq.create ~nclients:4 () in
  Seq.run seq schedule;
  Printf.printf "  %14s | %12d %16d | %10b\n" "cscw"
    (Cscw.server_ot_count cscw)
    (Cscw.server_metadata_size cscw)
    (Cscw.converged cscw);
  Printf.printf "  %14s | %12d %16d | %10b\n" "css"
    (Css.server_ot_count css)
    (Css.server_metadata_size css)
    (Css.converged css);
  Printf.printf "  %14s | %12d %16d | %10b\n" "css-sequencer"
    (Seq.server_ot_count seq)
    (Seq.server_metadata_size seq)
    (Seq.converged seq);
  Printf.printf
    "  claim: because the CSS protocol redirects ORIGINAL operations \
     (footnote 7), the center can be reduced to a stateless sequencer — \
     zero transformations, zero state — which is the stepping stone to the \
     paper's distributed-CSS future work.  The CSCW server cannot: it must \
     transform before forwarding.\n"

(* --- C9: the fully distributed CSS -------------------------------------- *)

module P2p = Rlist_sim.P2p_engine.Make (Jupiter_css.Distributed_protocol)

let c9_distributed () =
  section
    "C9 (future work, realized): CSS over peer-to-peer total-order \
     broadcast";
  Printf.printf "  %6s %8s | %10s %10s %10s | %10s\n" "peers" "updates"
    "messages" "OTs" "metadata" "converged";
  List.iter
    (fun npeers ->
      List.iter
        (fun updates ->
          let t = P2p.create ~npeers () in
          let rng = Random.State.make [| 13 |] in
          let params =
            {
              Rlist_sim.Schedule.default_params with
              updates;
              deliver_bias = 0.6;
            }
          in
          let schedule = P2p.run_random t ~rng ~params in
          let messages =
            List.length
              (List.filter
                 (function
                   | Rlist_sim.P2p_engine.Deliver _ -> true
                   | Rlist_sim.P2p_engine.Generate _ -> false)
                 schedule)
          in
          Printf.printf "  %6d %8d | %10d %10d %10d | %10b\n" npeers updates
            messages (P2p.total_ot_count t)
            (P2p.total_metadata_size t)
            (P2p.converged t))
        [ 50; 100 ])
    [ 3; 5 ];
  Printf.printf
    "  claim: the compact state-space composes with a decentralized \
     (Lamport-clock + stability) total order - no server anywhere.  The \
     price is O(n^2) message complexity (operation broadcasts plus clock \
     announcements) versus the star topology's O(n).\n"

(* --- C10: latency sweep -------------------------------------------------- *)

let c10_latency () =
  section "C10: concurrency window vs network latency (timed model)";
  Printf.printf "  %10s | %12s %10s | %10s\n" "latency" "css(single)" "OTs"
    "converged";
  List.iter
    (fun latency ->
      let t = Css.create ~nclients:4 () in
      let rng = Random.State.make [| 17 |] in
      let params =
        {
          Rlist_sim.Schedule.default_timed_params with
          t_updates = 150;
          t_mean_latency = latency;
          t_think_time = 100.0;
        }
      in
      ignore (Css.run_timed t ~rng ~params);
      Printf.printf "  %10.0f | %12d %10d | %10b\n" latency
        (Css.server_metadata_size t)
        (Css.total_ot_count t)
        (Css.converged t))
    [ 10.0; 50.0; 200.0; 800.0 ];
  Printf.printf
    "  claim: higher latency widens the concurrency window, and both the \
     transformation work and the state-space footprint grow with it - the \
     cost driver for OT protocols is concurrency, not document size.\n"

(* --- C11: the coordination spectrum -------------------------------------- *)

module Adopted = Rlist_sim.P2p_engine.Make (Jupiter_ttf.Adopted_protocol)

let c11_coordination_spectrum () =
  section
    "C11: what each protocol family pays for, and what it gets \
     (100 updates, 3 replicas)";
  Printf.printf "  %14s | %12s | %8s %10s | %6s %6s\n" "protocol"
    "coordination" "OTs" "metadata" "weak" "strong";
  let show name coordination ~ots ~metadata ~trace =
    let v check = if Rlist_spec.Check.is_satisfied (check trace) then "yes" else "NO" in
    Printf.printf "  %14s | %12s | %8d %10d | %6s %6s\n" name coordination ots
      metadata
      (v Rlist_spec.Weak_spec.check)
      (v Rlist_spec.Strong_spec.check)
  in
  (* The hotspot workload concentrates edits, so the Jupiter variants'
     strong-spec violations (Theorem 8.1) show up reliably. *)
  let params = Rlist_workload.Workload.params Rlist_workload.Workload.Hotspot ~updates:100 in
  let nclients = 3 in
  let hotspot_intent rng =
    Rlist_workload.Workload.intent_generator Rlist_workload.Workload.Hotspot
      ~nclients ~rng
  in
  (* client/server CSS *)
  let css = Css.create ~nclients () in
  (let rng = Random.State.make [| 3 |] in
   ignore (Css.run_random ~intent:(hotspot_intent rng) css ~rng ~params));
  show "css" "total order" ~ots:(Css.total_ot_count css)
    ~metadata:(Css.total_metadata_size css) ~trace:(Css.trace css);
  (* distributed CSS: Lamport + stability *)
  let p2p = P2p.create ~npeers:nclients () in
  (let rng = Random.State.make [| 3 |] in
   ignore (P2p.run_random ~intent:(hotspot_intent rng) p2p ~rng ~params));
  show "css-p2p" "stability" ~ots:(P2p.total_ot_count p2p)
    ~metadata:(P2p.total_metadata_size p2p) ~trace:(P2p.trace p2p);
  (* TTF adOPTed: causal only *)
  let ttf = Adopted.create ~npeers:nclients () in
  (let rng = Random.State.make [| 3 |] in
   ignore (Adopted.run_random ~intent:(hotspot_intent rng) ttf ~rng ~params));
  show "ttf-adopted" "causal only" ~ots:(Adopted.total_ot_count ttf)
    ~metadata:(Adopted.total_metadata_size ttf) ~trace:(Adopted.trace ttf);
  (* RGA: causal only, no OT *)
  let rga = Rga.create ~nclients () in
  (let rng = Random.State.make [| 3 |] in
   ignore (Rga.run_random ~intent:(hotspot_intent rng) rga ~rng ~params));
  show "rga" "causal only" ~ots:(Rga.total_ot_count rga)
    ~metadata:(Rga.total_metadata_size rga) ~trace:(Rga.trace rga);
  Printf.printf
    "  claim: Jupiter's view-position OT violates CP2, so it buys \
     convergence with a total order and guarantees only the weak spec \
     (strong fails on contended schedules like this one).  TTF satisfies \
     CP2, needs only causal order, and - because model positions never \
     move - even guarantees the strong spec, like the CRDTs.  The trade is \
     tombstones plus transformation work.\n"

(* --- C12: document scaling — the rope-backed list core ------------------ *)

(* Micro-benchmarks of the document layer itself: the rope-backed
   {!Document} against {!Document_reference} (the seed's linked list,
   kept as the testing oracle), at 10^2..10^5 elements, plus session
   replays.  Emits machine-readable BENCH_document.json on request so
   the perf trajectory is tracked across PRs. *)

let doc_elements n =
  Array.init n (fun i ->
      Element.make
        ~value:(Char.chr (Char.code 'a' + (i mod 26)))
        ~id:(Op_id.make ~client:9 ~seq:(i + 1)))

(* Cycle through a few precomputed positions so the benchmark body does
   no RNG work. *)
let cycling arr =
  let i = ref 0 in
  fun () ->
    let p = arr.(!i) in
    i := (!i + 1) mod Array.length arr;
    p

let doc_micro_tests n =
  let open Bechamel in
  let els = Array.to_list (doc_elements n) in
  let rope = Document.of_elements els in
  let refd = Document_reference.of_elements els in
  let fresh = Element.make ~value:'!' ~id:(Op_id.make ~client:8 ~seq:1) in
  let rng = Random.State.make [| 42; n |] in
  let ins_pos = Array.init 64 (fun _ -> Random.State.int rng (n + 1)) in
  let hit_pos = Array.init 64 (fun _ -> Random.State.int rng (max 1 n)) in
  let test ~op ~impl fn =
    let name = Printf.sprintf "doc/%s/%s/%d" op impl n in
    ( (Printf.sprintf "bench/%s" name, impl, op, n),
      Test.make ~name (Staged.stage fn) )
  in
  let ins = cycling ins_pos and ins' = cycling ins_pos in
  let del = cycling hit_pos and del' = cycling hit_pos in
  let at = cycling hit_pos and at' = cycling hit_pos in
  [
    test ~op:"insert" ~impl:"rope" (fun () ->
        ignore (Document.insert rope ~pos:(ins ()) fresh));
    test ~op:"insert" ~impl:"reference" (fun () ->
        ignore (Document_reference.insert refd ~pos:(ins' ()) fresh));
    test ~op:"delete" ~impl:"rope" (fun () ->
        ignore (Document.delete rope ~pos:(del ())));
    test ~op:"delete" ~impl:"reference" (fun () ->
        ignore (Document_reference.delete refd ~pos:(del' ())));
    test ~op:"nth" ~impl:"rope" (fun () ->
        ignore (Document.nth rope (at ())));
    test ~op:"nth" ~impl:"reference" (fun () ->
        ignore (Document_reference.nth refd (at' ())));
    test ~op:"to_string" ~impl:"rope" (fun () ->
        ignore (Document.to_string rope));
    test ~op:"to_string" ~impl:"reference" (fun () ->
        ignore (Document_reference.to_string refd));
  ]

(* A synthetic collaborative session at the document layer: a fixed
   random stream of inserts/deletes replayed through both
   implementations.  The final documents must be identical — the same
   check the differential property tests make, here at bench scale. *)
let session_script ~ops ~seed =
  let rng = Random.State.make [| seed; 0xD0C |] in
  List.init ops (fun i ->
      if i = 0 || Random.State.float rng 1.0 < 0.7 then
        `Ins
          ( Char.chr (Char.code 'a' + Random.State.int rng 26),
            Random.State.int rng 1_000_000 )
      else `Del (Random.State.int rng 1_000_000))

let replay_rope script =
  let step (doc, seq) = function
    | `Ins (c, p) ->
      let e = Element.make ~value:c ~id:(Op_id.make ~client:7 ~seq) in
      Document.insert doc ~pos:(p mod (Document.length doc + 1)) e, seq + 1
    | `Del p ->
      if Document.length doc = 0 then doc, seq
      else snd (Document.delete doc ~pos:(p mod Document.length doc)), seq
  in
  fst (List.fold_left step (Document.empty, 1) script)

let replay_reference script =
  let step (doc, seq) = function
    | `Ins (c, p) ->
      let e = Element.make ~value:c ~id:(Op_id.make ~client:7 ~seq) in
      ( Document_reference.insert doc
          ~pos:(p mod (Document_reference.length doc + 1))
          e,
        seq + 1 )
    | `Del p ->
      if Document_reference.length doc = 0 then doc, seq
      else
        ( snd (Document_reference.delete doc ~pos:(p mod Document_reference.length doc)),
          seq )
  in
  fst (List.fold_left step (Document_reference.empty, 1) script)

(* End-to-end sessions: the full CSS (OT) and RGA (CRDT) stacks, whose
   every operation application now runs on the rope. *)
let css_session ~updates () =
  let t = Css.create ~nclients:4 () in
  let rng = Random.State.make [| 1234 |] in
  ignore
    (Css.run_random t ~rng
       ~params:{ Rlist_sim.Schedule.default_params with updates });
  t

let rga_session ~updates () =
  let t = Rga.create ~nclients:4 () in
  let rng = Random.State.make [| 1234 |] in
  ignore
    (Rga.run_random t ~rng
       ~params:{ Rlist_sim.Schedule.default_params with updates });
  t

let document_scaling ?(sizes = [ 100; 1_000; 10_000; 100_000 ]) ?(quota = 0.5)
    ?(replay_ops = 2_000) ?(engine_updates = 200) ?json_path () =
  let open Bechamel in
  section "C12: document scaling — rope vs reference linked list";
  (* Identical-result check for the replayed session, before timing. *)
  let script = session_script ~ops:replay_ops ~seed:2024 in
  let rope_final = Document.to_string (replay_rope script) in
  let ref_final = Document_reference.to_string (replay_reference script) in
  if not (String.equal rope_final ref_final) then
    failwith "document replay: rope and reference disagree";
  Printf.printf
    "  replayed %d-op session on both implementations: identical %d-char \
     final documents\n"
    replay_ops (String.length rope_final);
  let css_t = css_session ~updates:engine_updates () in
  let rga_t = rga_session ~updates:engine_updates () in
  Printf.printf
    "  end-to-end sessions (%d updates, 4 clients): css converged=%b \
     rga converged=%b\n"
    engine_updates (Css.converged css_t) (Rga.converged rga_t);
  let micro = List.concat_map doc_micro_tests sizes in
  let replays =
    [
      ( (Printf.sprintf "bench/doc/replay/rope/%d" replay_ops, "rope", "replay",
         replay_ops),
        Test.make
          ~name:(Printf.sprintf "doc/replay/rope/%d" replay_ops)
          (Staged.stage (fun () -> ignore (replay_rope script))) );
      ( (Printf.sprintf "bench/doc/replay/reference/%d" replay_ops,
         "reference", "replay", replay_ops),
        Test.make
          ~name:(Printf.sprintf "doc/replay/reference/%d" replay_ops)
          (Staged.stage (fun () -> ignore (replay_reference script))) );
      ( (Printf.sprintf "bench/session/css-replay/engine/%d" engine_updates,
         "engine", "css-replay", engine_updates),
        Test.make
          ~name:(Printf.sprintf "session/css-replay/engine/%d" engine_updates)
          (Staged.stage (fun () -> ignore (css_session ~updates:engine_updates ()))) );
      ( (Printf.sprintf "bench/session/rga-replay/engine/%d" engine_updates,
         "engine", "rga-replay", engine_updates),
        Test.make
          ~name:(Printf.sprintf "session/rga-replay/engine/%d" engine_updates)
          (Staged.stage (fun () -> ignore (rga_session ~updates:engine_updates ()))) );
    ]
  in
  let all = micro @ replays in
  let results = Harness.run ~quota ~quiet:true (List.map snd all) in
  let ns key = Harness.ns_per_run results key in
  (* Comparison table: reference vs rope, per operation and size. *)
  Printf.printf "  %9s %-10s | %12s %12s | %8s\n" "size" "op" "reference"
    "rope" "speedup";
  List.iter
    (fun n ->
      List.iter
        (fun op ->
          let r = ns (Printf.sprintf "bench/doc/%s/reference/%d" op n) in
          let o = ns (Printf.sprintf "bench/doc/%s/rope/%d" op n) in
          Printf.printf "  %9d %-10s | %12s %12s | %7.1fx\n" n op
            (String.trim (Harness.pretty_ns r))
            (String.trim (Harness.pretty_ns o))
            (r /. o))
        [ "insert"; "delete"; "nth"; "to_string" ])
    sizes;
  List.iter
    (fun (key, label) ->
      Printf.printf "  %-32s %s/op\n" label (String.trim (Harness.pretty_ns (ns key))))
    [
      Printf.sprintf "bench/doc/replay/rope/%d" replay_ops,
      Printf.sprintf "replay %d ops (rope)" replay_ops;
      Printf.sprintf "bench/doc/replay/reference/%d" replay_ops,
      Printf.sprintf "replay %d ops (reference)" replay_ops;
      Printf.sprintf "bench/session/css-replay/engine/%d" engine_updates,
      Printf.sprintf "css session %d updates" engine_updates;
      Printf.sprintf "bench/session/rga-replay/engine/%d" engine_updates,
      Printf.sprintf "rga session %d updates" engine_updates;
    ];
  Printf.printf
    "  claim: every positional document operation is O(log n) on the rope; \
     the reference list is O(n), so the gap widens with document size.\n";
  (match json_path with
  | None -> ()
  | Some path ->
    let entries =
      List.map
        (fun ((key, impl, op, size), _) ->
          { Harness.name = key; impl; op; size; ns_per_op = ns key })
        all
    in
    Harness.write_json ~path ~benchmark:"document_scaling" entries;
    Printf.printf "  wrote %s (%d entries)\n" path (List.length entries));
  results

(* --- C13: observability — traced counters on the figure scenarios ------ *)

(* Replays each star-shaped figure scenario under CSS and CSCW with the
   observability layer attached, and cross-checks the traced event
   aggregates against the protocols' own cumulative counters: the sum
   of the [transforms] fields over the deliver events must equal the
   engine's total OT count (in both Jupiter variants no transformation
   happens at generation time — the new operation sits at the top of
   its replica's space).  The figure2 numbers are the paper's: the CSS
   server performs 0 + 2 + 4 = 6 transformations (Figure 4's commuting
   ladders), the whole system 24 — while CSCW needs only 7, the
   redundant-transformation gap of Section 7.2 (CSS recomputes in one
   compact space what CSCW caches across its 2n dispersed 2D spaces;
   the behaviours still coincide by Theorem 7.1).  Emits BENCH_obs.json
   on request. *)

type obs_entry = {
  o_scenario : string;
  o_protocol : string;
  o_metric : string;
  o_value : int;
}

let obs_write_json ~path entries =
  let oc = open_out path in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"benchmark\": \"observability_counters\",\n";
  out "  \"results\": [\n";
  List.iteri
    (fun i e ->
      out
        "    {\"scenario\": \"%s\", \"protocol\": \"%s\", \"metric\": \
         \"%s\", \"value\": %d}%s\n"
        e.o_scenario e.o_protocol e.o_metric e.o_value
        (if i = List.length entries - 1 then "" else ","))
    entries;
  out "  ]\n";
  out "}\n";
  close_out oc

let c13_observability ?json_path () =
  section "C13 (observability): traced transform counts on figure scenarios";
  let entries = ref [] in
  Printf.printf "  %-8s | %-5s | %7s %8s %7s %7s %9s | %s\n" "scenario"
    "proto" "events" "delivers" "xforms" "server" "metadata" "traced=actual";
  let report (s : Rlist_sim.Figures.scenario) proto events ~delivers ~xforms
      ~server_xforms ~metadata ~actual =
    Printf.printf "  %-8s | %-5s | %7d %8d %7d %7d %9d | %b\n" s.sname proto
      events delivers xforms server_xforms metadata (xforms = actual);
    List.iter
      (fun (metric, value) ->
        entries :=
          { o_scenario = s.sname; o_protocol = proto; o_metric = metric;
            o_value = value }
          :: !entries)
      [
        "events_traced", events;
        "deliveries", delivers;
        "transforms_total", xforms;
        "transforms_server", server_xforms;
        "metadata_total", metadata;
      ]
  in
  let star_figures =
    List.filter
      (fun (s : Rlist_sim.Figures.scenario) -> s.sname <> "figure8")
      Rlist_sim.Figures.all
  in
  List.iter
    (fun (s : Rlist_sim.Figures.scenario) ->
      (* CSS *)
      (let sink = Rlist_obs.Sink.memory () in
       let obs = Rlist_obs.Obs.make ~sink () in
       let t = Css.create ~initial:s.initial ~nclients:s.nclients () in
       Css.attach_obs t obs;
       Css.run t s.schedule;
       let events = Rlist_obs.Sink.events sink in
       report s "css" (List.length events)
         ~delivers:
           (Rlist_obs.Obs.count_kind events "deliver")
         ~xforms:(Rlist_obs.Obs.sum_deliver_transforms events)
         ~server_xforms:(Css.server_ot_count t)
         ~metadata:(Css.total_metadata_size t)
         ~actual:(Css.total_ot_count t));
      (* CSCW on the same schedule *)
      let sink = Rlist_obs.Sink.memory () in
      let obs = Rlist_obs.Obs.make ~sink () in
      let t = Cscw.create ~initial:s.initial ~nclients:s.nclients () in
      Cscw.attach_obs t obs;
      Cscw.run t s.schedule;
      let events = Rlist_obs.Sink.events sink in
      report s "cscw" (List.length events)
        ~delivers:(Rlist_obs.Obs.count_kind events "deliver")
        ~xforms:(Rlist_obs.Obs.sum_deliver_transforms events)
        ~server_xforms:(Cscw.server_ot_count t)
        ~metadata:(Cscw.total_metadata_size t)
        ~actual:(Cscw.total_ot_count t))
    star_figures;
  Printf.printf
    "  claim: per-delivery transform deltas account for every primitive OT \
     call (figure2: css server 6, system 24 vs cscw 7 — the redundant-OT \
     gap of Section 7.2; behaviours coincide by Thm 7.1).\n";
  match json_path with
  | None -> ()
  | Some path ->
    obs_write_json ~path (List.rev !entries);
    Printf.printf "  wrote %s (%d entries)\n" path (List.length !entries)

(* --- C14: model checking — POR reduction factor and throughput --------- *)

(* Runs the bounded model checker (lib/mc) over small workloads with
   and without partial-order reduction, and reports explored vs pruned
   interleavings, states per second, and the POR reduction factor
   (naive interleavings / reduced interleavings).  Both modes must
   produce identical verdicts — the bench asserts it, making this a
   soundness canary as well as a throughput figure.  Naive enumeration
   is only run where it is tractable.  Emits BENCH_mc.json on
   request. *)

type mc_entry = {
  m_workload : string;
  m_protocol : string;
  m_mode : string;  (* "por" or "naive" *)
  m_states : int;
  m_interleavings : int;
  m_pruned_state : int;
  m_pruned_sleep : int;
  m_elapsed_s : float;
  m_truncated : bool;
  m_violations : string list;
}

let mc_write_json ~path entries =
  let oc = open_out path in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"benchmark\": \"model_checking\",\n";
  out "  \"results\": [\n";
  List.iteri
    (fun i e ->
      out
        "    {\"workload\": \"%s\", \"protocol\": \"%s\", \"mode\": \
         \"%s\", \"states\": %d, \"interleavings\": %d, \"pruned_state\": \
         %d, \"pruned_sleep\": %d, \"elapsed_s\": %.6f, \"states_per_sec\": \
         %.0f, \"truncated\": %b, \"violations\": [%s]}%s\n"
        e.m_workload e.m_protocol e.m_mode e.m_states e.m_interleavings
        e.m_pruned_state e.m_pruned_sleep e.m_elapsed_s
        (float_of_int e.m_states /. Float.max 1e-9 e.m_elapsed_s)
        e.m_truncated
        (String.concat ", "
           (List.map (fun s -> Printf.sprintf "\"%s\"" s) e.m_violations))
        (if i = List.length entries - 1 then "" else ","))
    entries;
  out "  ]\n";
  out "}\n";
  close_out oc

let c14_model_checking ?json_path ?(smoke = false) () =
  section "C14 (model checking): POR reduction factor and throughput";
  let entries = ref [] in
  Printf.printf "  %-18s | %-5s | %-5s | %8s %8s %9s %9s | %s\n" "workload"
    "proto" "mode" "states" "interlv" "pruned" "states/s" "violations";
  let specs = Rlist_mc.Mc.all_specs in
  (* The smoke canary caps naive enumeration: the violation (if any)
     surfaces within the first few thousand states of the DFS, and the
     full 500k-state naive sweep belongs to the full bench only. *)
  let budget ~por = if smoke && not por then 50_000 else 500_000 in
  let run_one protocol name ~por workload =
    let max_states = budget ~por in
    let t0 = Harness.now_ns () in
    let outcome =
      match protocol with
      | `Css ->
        let module M = Rlist_mc.Mc.Cs (Jupiter_css.Protocol) in
        M.check ~por ~max_states ~shrink:false ~specs ~workload ()
      | `Cscw ->
        let module M = Rlist_mc.Mc.Cs (Jupiter_cscw.Protocol) in
        M.check ~por ~max_states ~shrink:false ~specs ~workload ()
    in
    let elapsed = (Harness.now_ns () -. t0) /. 1e9 in
    let stats = outcome.Rlist_mc.Mc.stats in
    let violations =
      List.map
        (fun (v : _ Rlist_mc.Explore.violation) -> v.Rlist_mc.Explore.v_spec)
        outcome.Rlist_mc.Mc.violations
    in
    let e =
      {
        m_workload = workload.Rlist_mc.Workload.wname;
        m_protocol = name;
        m_mode = (if por then "por" else "naive");
        m_states = stats.Rlist_mc.Explore.states;
        m_interleavings = stats.Rlist_mc.Explore.terminals;
        m_pruned_state = stats.Rlist_mc.Explore.pruned_state;
        m_pruned_sleep = stats.Rlist_mc.Explore.pruned_sleep;
        m_elapsed_s = elapsed;
        m_truncated = stats.Rlist_mc.Explore.truncated;
        m_violations = violations;
      }
    in
    entries := e :: !entries;
    Printf.printf "  %-18s | %-5s | %-5s | %8d %8d %9d %9.0f | %s\n"
      e.m_workload e.m_protocol e.m_mode e.m_states e.m_interleavings
      (e.m_pruned_state + e.m_pruned_sleep)
      (float_of_int e.m_states /. Float.max 1e-9 elapsed)
      (if violations = [] then "-" else String.concat "," violations);
    e
  in
  let compare_modes protocol name workload =
    let reduced = run_one protocol name ~por:true workload in
    let naive = run_one protocol name ~por:false workload in
    if
      List.sort String.compare reduced.m_violations
      <> List.sort String.compare naive.m_violations
    then
      failwith
        (Printf.sprintf "C14: POR changed the %s/%s verdicts!" name
           workload.Rlist_mc.Workload.wname);
    (* A truncated naive run still lower-bounds the reduction. *)
    Printf.printf "  %-18s | %-5s | reduction factor %s%.1fx\n"
      workload.Rlist_mc.Workload.wname name
      (if naive.m_truncated then ">=" else "")
      (float_of_int naive.m_interleavings
      /. Float.max 1.0 (float_of_int reduced.m_interleavings))
  in
  let small = Rlist_mc.Workload.combinatorial ~nclients:2 ~ops:1 in
  let thm81 = Rlist_mc.Workload.thm81 in
  List.iter
    (fun (protocol, name) ->
      compare_modes protocol name small;
      compare_modes protocol name thm81;
      if not smoke then
        ignore
          (run_one protocol name ~por:true
             (Rlist_mc.Workload.combinatorial ~nclients:2 ~ops:2)))
    [ (`Css, "css"); (`Cscw, "cscw") ];
  Printf.printf
    "  claim: sleep sets + state caching preserve every verdict (asserted \
     above) while pruning the interleaving space; thm81 refutes the strong \
     spec under both modes (Thm 8.1).\n";
  (match json_path with
  | None -> ()
  | Some path ->
    mc_write_json ~path (List.rev !entries);
    Printf.printf "  wrote %s (%d entries)\n" path (List.length !entries));
  List.rev !entries

(* --- C15: unreliable network — shim cost vs loss rate ------------------ *)

(* Runs a fixed random workload over the fault-injecting channel layer
   (lib/net) with the reliability shim on, sweeping the drop
   probability, and reports convergence latency (virtual-clock ticks
   until quiescence) and message amplification (physical transmissions
   per logical payload).  Every run must converge — the shim restores
   the FIFO-exactly-once contract at any loss < 1 — and the bench
   asserts it.  Emits BENCH_net.json on request. *)

type net_entry = {
  n_protocol : string;
  n_faults : string;
  n_loss : float;
  n_converged : bool;
  n_ticks : int;
  n_payloads : int;
  n_transmissions : int;
  n_retransmits : int;
  n_dup_dropped : int;
  n_partitions_healed : int;
  n_amplification : float;
  n_elapsed_s : float;
}

let net_write_json ~path entries =
  let oc = open_out path in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"benchmark\": \"unreliable_network\",\n";
  out "  \"results\": [\n";
  List.iteri
    (fun i e ->
      out
        "    {\"protocol\": \"%s\", \"faults\": \"%s\", \"loss\": %.2f, \
         \"converged\": %b, \"ticks\": %d, \"payloads\": %d, \
         \"transmissions\": %d, \"retransmits\": %d, \"dup_dropped\": %d, \
         \"partitions_healed\": %d, \"amplification\": %.3f, \
         \"elapsed_s\": %.6f}%s\n"
        e.n_protocol e.n_faults e.n_loss e.n_converged e.n_ticks e.n_payloads
        e.n_transmissions e.n_retransmits e.n_dup_dropped
        e.n_partitions_healed e.n_amplification e.n_elapsed_s
        (if i = List.length entries - 1 then "" else ","))
    entries;
  out "  ]\n";
  out "}\n";
  close_out oc

let c15_network ?json_path ?(smoke = false) () =
  section "C15 (network): reliability-shim cost vs loss rate";
  let updates = if smoke then 30 else 120 in
  let entries = ref [] in
  Printf.printf "  %-5s | %-26s | %5s %6s %7s %7s %8s %6s\n" "proto" "faults"
    "loss" "ticks" "msgs" "retx" "dup-drop" "ampl";
  let run_cs (type c s c2s s2c)
      (module P : Rlist_sim.Protocol_intf.PROTOCOL
        with type client = c
         and type server = s
         and type c2s = c2s
         and type s2c = s2c) ~loss faults =
    let net = Rlist_net.Transport.config ~faults ~seed:42 () in
    let module E = Rlist_sim.Engine.Make (P) in
    let t = E.create ~net ~nclients:4 () in
    let rng = Random.State.make [| 42 |] in
    let t0 = Harness.now_ns () in
    ignore
      (E.run_random t ~rng
         ~params:{ Rlist_sim.Schedule.default_params with updates });
    let elapsed = (Harness.now_ns () -. t0) /. 1e9 in
    let st = Rlist_net.Transport.stats net in
    if not (E.converged t) then
      failwith
        (Printf.sprintf "C15: %s diverged under the shim (%s)" P.name
           (Rlist_net.Faults.to_string faults));
    let e =
      {
        n_protocol = P.name;
        n_faults = Rlist_net.Faults.to_string faults;
        n_loss = loss;
        n_converged = true;
        n_ticks = st.Rlist_net.Stats.ticks;
        n_payloads = st.Rlist_net.Stats.payloads;
        n_transmissions = st.Rlist_net.Stats.transmissions;
        n_retransmits = st.Rlist_net.Stats.retransmits;
        n_dup_dropped = st.Rlist_net.Stats.dup_dropped;
        n_partitions_healed = st.Rlist_net.Stats.partitions_healed;
        n_amplification = Rlist_net.Stats.amplification st;
        n_elapsed_s = elapsed;
      }
    in
    entries := e :: !entries;
    Printf.printf "  %-5s | %-26s | %5.2f %6d %7d %7d %8d %6.2f\n" e.n_protocol
      e.n_faults e.n_loss e.n_ticks e.n_transmissions e.n_retransmits
      e.n_dup_dropped e.n_amplification
  in
  let losses = if smoke then [ 0.0; 0.3 ] else [ 0.0; 0.1; 0.3; 0.5 ] in
  let lossy loss =
    { Rlist_net.Faults.none with drop = loss; duplicate = 0.1; reorder = 0.2 }
  in
  List.iter
    (fun loss ->
      run_cs (module Jupiter_css.Protocol) ~loss (lossy loss);
      run_cs (module Jupiter_cscw.Protocol) ~loss (lossy loss);
      run_cs (module Jupiter_rga.Protocol) ~loss (lossy loss))
    losses;
  (* One cyclically partitioned run on top of the loss sweep: the link
     heals every period, so convergence survives — at a latency cost. *)
  (match Rlist_net.Faults.preset "partition" with
  | Some faults -> run_cs (module Jupiter_css.Protocol) ~loss:faults.drop faults
  | None -> failwith "C15: partition preset missing");
  Printf.printf
    "  claim: with the shim every protocol converges at any loss <= 0.5; \
     amplification and convergence latency grow with the loss rate \
     (retransmissions pay for reliability).\n";
  match json_path with
  | None -> ()
  | Some path ->
    net_write_json ~path (List.rev !entries);
    Printf.printf "  wrote %s (%d entries)\n" path (List.length !entries)

(* --- C16: per-channel batching + transform fast paths ------------------ *)

(* Replays the C15 lossy profiles per protocol in three modes and
   reports wall-clock throughput (generated updates per second of
   engine time):

   - "baseline": the seed's cost model — one op per message and, for
     the CSS space, the fast-path record's [baseline] ablation (every
     ladder square re-hashes its full state set, the pre-optimization
     cost);
   - "unbatched": the current default wire, optimized space, fast
     paths off;
   - "batched": per-channel batching plus the leftmost-path fast
     paths.

   Two workloads per profile: "random" is the C15 uniform-position
   replay (coalescing and the context-match shortcut apply; pure
   append runs are rare), and "typing" is the collaborative hot path
   the tentpole targets — every client types a burst of consecutive
   characters at the end of its local view before any delivery, so
   each channel flush is one batch whose lanes form a pure append run.
   The headline number is the CSS batched:baseline speedup per profile
   (acceptance bar: >= 10x); the unbatched leg attributes how much of
   it batching itself buys on the already-optimized space.  Every run
   must still converge, and the fast-path counters must show the
   specialized paths actually fired.  Emits BENCH_batch.json on
   request. *)

type batch_entry = {
  bt_protocol : string;
  bt_workload : string;
  bt_faults : string;
  bt_loss : float;
  bt_mode : string;
  bt_updates : int;
  bt_converged : bool;
  bt_payloads : int;
  bt_op_payloads : int;
  bt_amplification : float;
  bt_context_hits : int;
  bt_append_hits : int;
  bt_elapsed_s : float;
  bt_ops_per_s : float;
}

let batch_write_json ~path ~speedups entries =
  let oc = open_out path in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"benchmark\": \"batching\",\n";
  out "  \"results\": [\n";
  List.iteri
    (fun i e ->
      out
        "    {\"protocol\": \"%s\", \"workload\": \"%s\", \"faults\": \
         \"%s\", \"loss\": %.2f, \"mode\": \"%s\", \"updates\": %d, \
         \"converged\": %b, \"payloads\": %d, \"op_payloads\": %d, \
         \"amplification\": %.3f, \"context_hits\": %d, \"append_hits\": \
         %d, \"elapsed_s\": %.6f, \"ops_per_s\": %.1f}%s\n"
        e.bt_protocol e.bt_workload e.bt_faults e.bt_loss e.bt_mode
        e.bt_updates e.bt_converged e.bt_payloads e.bt_op_payloads
        e.bt_amplification e.bt_context_hits e.bt_append_hits e.bt_elapsed_s
        e.bt_ops_per_s
        (if i = List.length entries - 1 then "" else ","))
    entries;
  out "  ],\n";
  out "  \"css_speedups\": [\n";
  List.iteri
    (fun i (loss, s) ->
      out "    {\"loss\": %.2f, \"speedup\": %.2f}%s\n" loss s
        (if i = List.length speedups - 1 then "" else ","))
    speedups;
  out "  ]\n";
  out "}\n";
  close_out oc

let c16_batching ?json_path ?(smoke = false) () =
  section "C16 (batching): per-channel batches + transform fast paths";
  let updates = if smoke then 150 else 300 in
  (* The typing run must be long enough for the baseline's O(n)
     per-square hashing to dominate; below ~1200 operations the
     constant costs compress the measured speedup. *)
  let bursts = if smoke then 6 else 8 in
  let burst = 64 in
  let entries = ref [] in
  Printf.printf "  %-5s | %-6s | %5s | %-9s | %8s %8s %6s %10s\n" "proto"
    "work" "loss" "mode" "msgs" "ops" "ampl" "ops/sec";
  let run_cs (type c s c2s s2c)
      (module P : Rlist_sim.Protocol_intf.PROTOCOL
        with type client = c
         and type server = s
         and type c2s = c2s
         and type s2c = s2c) ~workload ~loss ~mode faults =
    let batched = mode = `Batched in
    (* One fast-path record per measured run: [baseline] is captured
       by each space at creation time, and the counters cover exactly
       this engine's replicas. *)
    let fp =
      Rlist_ot.Fastpath.create ~enabled:batched ~baseline:(mode = `Baseline)
        ()
    in
    let net = Rlist_net.Transport.config ~faults ~seed:42 () in
    let module E = Rlist_sim.Engine.Make (P) in
    let t = E.create ~net ~batching:batched ~fastpath:fp ~nclients:4 () in
    let t0 = Harness.now_ns () in
    let total =
      match workload with
      | `Random ->
        let rng = Random.State.make [| 42 |] in
        ignore
          (E.run_random t ~rng
             ~params:{ Rlist_sim.Schedule.default_params with updates });
        updates
      | `Typing ->
        (* Each round, every client types [burst] characters at the end
           of its local view before anything is delivered — concurrent
           append runs, one batch per flush in batched mode. *)
        for _round = 1 to bursts do
          for i = 1 to E.nclients t do
            let len = Document.length (E.client_document t i) in
            for j = 0 to burst - 1 do
              E.apply_event t
                (Rlist_sim.Schedule.Generate (i, Intent.Insert ('a', len + j)))
            done
          done;
          ignore (E.quiesce t)
        done;
        bursts * E.nclients t * burst
    in
    let elapsed = (Harness.now_ns () -. t0) /. 1e9 in
    let mode_name =
      match mode with
      | `Baseline -> "baseline"
      | `Unbatched -> "unbatched"
      | `Batched -> "batched"
    in
    if not (E.converged t) then
      failwith
        (Printf.sprintf "C16: %s diverged (%s, %s)" P.name
           (Rlist_net.Faults.to_string faults) mode_name);
    let st = Rlist_net.Transport.stats net in
    let workload_name =
      match workload with `Random -> "random" | `Typing -> "typing"
    in
    let e =
      {
        bt_protocol = P.name;
        bt_workload = workload_name;
        bt_faults = Rlist_net.Faults.to_string faults;
        bt_loss = loss;
        bt_mode = mode_name;
        bt_updates = total;
        bt_converged = true;
        bt_payloads = st.Rlist_net.Stats.payloads;
        bt_op_payloads = st.Rlist_net.Stats.op_payloads;
        bt_amplification = Rlist_net.Stats.amplification st;
        bt_context_hits = fp.Rlist_ot.Fastpath.context_hits;
        bt_append_hits = fp.Rlist_ot.Fastpath.append_hits;
        bt_elapsed_s = elapsed;
        bt_ops_per_s = float_of_int total /. elapsed;
      }
    in
    entries := e :: !entries;
    Printf.printf "  %-5s | %-6s | %5.2f | %-9s | %8d %8d %6.2f %10.0f\n"
      e.bt_protocol e.bt_workload e.bt_loss mode_name e.bt_payloads
      e.bt_op_payloads e.bt_amplification e.bt_ops_per_s
  in
  let losses = if smoke then [ 0.0; 0.3 ] else [ 0.0; 0.1; 0.3; 0.5 ] in
  let lossy loss =
    { Rlist_net.Faults.none with drop = loss; duplicate = 0.1; reorder = 0.2 }
  in
  List.iter
    (fun loss ->
      List.iter
        (fun mode ->
          List.iter
            (fun workload ->
              (* The baseline ablation lives in the CSS state space;
                 cscw/rga have no equivalent leg. *)
              run_cs
                (module Jupiter_css.Protocol)
                ~workload ~loss ~mode (lossy loss);
              if mode <> `Baseline then begin
                run_cs
                  (module Jupiter_cscw.Protocol)
                  ~workload ~loss ~mode (lossy loss);
                run_cs
                  (module Jupiter_rga.Protocol)
                  ~workload ~loss ~mode (lossy loss)
              end)
            [ `Random; `Typing ])
        [ `Baseline; `Unbatched; `Batched ])
    losses;
  let entries = List.rev !entries in
  let find proto workload loss mode =
    List.find
      (fun e ->
        e.bt_protocol = proto
        && e.bt_workload = workload
        && e.bt_loss = loss && e.bt_mode = mode)
      entries
  in
  let speedups =
    List.map
      (fun loss ->
        ( loss,
          (find "css" "typing" loss "batched").bt_ops_per_s
          /. (find "css" "typing" loss "baseline").bt_ops_per_s ))
      losses
  in
  List.iter
    (fun (loss, s) ->
      Printf.printf "  css typing speedup vs baseline @ loss %.2f: %.1fx\n"
        loss s)
    speedups;
  let batched_css = find "css" "typing" (List.hd losses) "batched" in
  if batched_css.bt_context_hits = 0 || batched_css.bt_append_hits = 0 then
    failwith "C16: fast paths never fired on the batched CSS typing run";
  Printf.printf
    "  claim: batching collapses each channel flush into one message \
     (amplification now counts ops, so reliability cost is comparable \
     across modes), incremental state hashing and pointer-mirrored \
     ladder walks remove the per-square O(n) hash of the seed (the \
     'baseline' leg restores that cost model), and the leftmost-path \
     fast paths turn appends into O(1) steps; together the batched \
     path buys >= 10x CSS throughput over the unbatched seed-cost \
     baseline on the C15 profiles.\n";
  match json_path with
  | None -> ()
  | Some path ->
    batch_write_json ~path ~speedups entries;
    Printf.printf "  wrote %s (%d entries)\n" path (List.length entries)

(* --- C17: flight-recorder overhead + convergence-lag percentiles ------- *)

(* Replays the C16 batched CSS typing workload across the C15 loss
   profiles in three instrumentation modes and reports the recorder's
   cost:

   - "off": the bare engine (the production configuration);
   - "record": the flight recorder attached — every nondeterministic
     decision lands in the ring buffer, nothing else changes;
   - "record+trace": recorder plus the full tracer into a memory sink
     (the configuration `soak --record-out --trace` runs with).

   The recorder's real cost is one ring-buffer store per engine
   decision (the decision values themselves are built eagerly at the
   call sites, recorder or not), which is far below the wall-clock
   noise of a shared CI container — so the legs are timed in process
   CPU seconds ([Unix.times], immune to preemption), the modes
   interleave round-robin across [reps] repetitions, and each mode's
   estimate is its minimum (contention noise is one-sided: it only
   adds time, so the minimum is the consistent estimator of the true
   cost).  The acceptance bar is the tentpole's: record-only overhead
   stays under 5% of ops/sec on every profile.  The traced leg's event stream additionally feeds
   {!Rlist_obs.Spans.summarize}, giving the convergence-lag
   percentiles per loss rate (generation at the origin to application
   at the last replica, in channel ticks).  Emits BENCH_trace.json on
   request. *)

type trace_entry = {
  tr_faults : string;
  tr_loss : float;
  tr_mode : string;
  tr_updates : int;
  tr_elapsed_s : float;
  tr_ops_per_s : float;
  tr_overhead_pct : float;  (** vs the "off" leg on the same profile. *)
}

type lag_entry = {
  lg_faults : string;
  lg_loss : float;
  lg_unit : string;
  lg_ops : int;
  lg_incomplete : int;
  lg_p50 : float;
  lg_p90 : float;
  lg_p99 : float;
  lg_max : float;
}

let trace_write_json ~path entries lags =
  let oc = open_out path in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"benchmark\": \"trace\",\n";
  out "  \"results\": [\n";
  List.iteri
    (fun i e ->
      out
        "    {\"faults\": \"%s\", \"loss\": %.2f, \"mode\": \"%s\", \
         \"updates\": %d, \"cpu_s\": %.6f, \"ops_per_cpu_s\": %.1f, \
         \"overhead_pct\": %.2f}%s\n"
        e.tr_faults e.tr_loss e.tr_mode e.tr_updates e.tr_elapsed_s
        e.tr_ops_per_s e.tr_overhead_pct
        (if i = List.length entries - 1 then "" else ","))
    entries;
  out "  ],\n";
  out "  \"convergence_lag\": [\n";
  List.iteri
    (fun i l ->
      out
        "    {\"faults\": \"%s\", \"loss\": %.2f, \"unit\": \"%s\", \
         \"ops\": %d, \"incomplete\": %d, \"p50\": %.1f, \"p90\": %.1f, \
         \"p99\": %.1f, \"max\": %.1f}%s\n"
        l.lg_faults l.lg_loss l.lg_unit l.lg_ops l.lg_incomplete l.lg_p50
        l.lg_p90 l.lg_p99 l.lg_max
        (if i = List.length lags - 1 then "" else ","))
    lags;
  out "  ]\n";
  out "}\n";
  close_out oc

let c17_trace ?json_path ?(smoke = false) () =
  section "C17 (trace): flight-recorder overhead + convergence lag";
  (* Runs must be long against the ~10ms CPU-clock tick (1024 ops is
     about a CPU-second, putting quantization around 1%) yet short
     enough that many repetitions fit — the minimum needs chances. *)
  let bursts = if smoke then 2 else 4 in
  let burst = 64 in
  let reps = if smoke then 3 else 12 in
  let nclients = 4 in
  let total = bursts * nclients * burst in
  let module E = Rlist_sim.Engine.Make (Jupiter_css.Protocol) in
  (* One timed typing run (the C16 batched hot path); returns the
     elapsed seconds and, when a sink is given, the trace events. *)
  let run_once ~mode faults =
    let net = Rlist_net.Transport.config ~faults ~seed:42 () in
    let t = E.create ~net ~batching:true ~nclients () in
    let sink =
      match mode with
      | `Off -> None
      | `Record ->
        E.attach_recorder t (Rlist_obs.Recorder.create ());
        None
      | `Record_trace ->
        E.attach_recorder t (Rlist_obs.Recorder.create ());
        let sink = Rlist_obs.Sink.memory () in
        E.attach_obs t (Rlist_obs.Obs.make ~sink ());
        Some sink
    in
    (* Start every timed run from a compacted heap: the measured
       effect is below run-to-run GC drift, and without this the ratio
       mostly reflects where the major collections happened to land. *)
    Gc.compact ();
    let cpu_s () =
      let tms = Unix.times () in
      tms.Unix.tms_utime +. tms.Unix.tms_stime
    in
    let t0 = cpu_s () in
    for _round = 1 to bursts do
      for i = 1 to nclients do
        let len = Document.length (E.client_document t i) in
        for j = 0 to burst - 1 do
          E.apply_event t
            (Rlist_sim.Schedule.Generate (i, Intent.Insert ('a', len + j)))
        done
      done;
      ignore (E.quiesce t)
    done;
    let elapsed = cpu_s () -. t0 in
    if not (E.converged t) then
      failwith
        (Printf.sprintf "C17: diverged (%s, recorder leg)"
           (Rlist_net.Faults.to_string faults));
    elapsed, Option.map Rlist_obs.Sink.events sink
  in
  let entries = ref [] in
  let lags = ref [] in
  Printf.printf "  %-26s | %5s | %-12s | %9s %10s %8s\n" "faults" "loss"
    "mode" "cpu" "ops/cpu-s" "overhead";
  let profile ~loss faults =
    let fname = Rlist_net.Faults.to_string faults in
    (* A shared container's CPU-seconds-per-op swings by tens of
       percent as neighbors come and go (the achieved IPC changes),
       and the noise is one-sided — contention only ever adds time.
       So the modes interleave round-robin (every mode gets a shot at
       every quiet window) and each mode's estimate is its minimum
       across the repetitions; the ratio of minima is the overhead. *)
    let off = ref infinity and record = ref infinity in
    let traced = ref infinity in
    let events = ref None in
    for _rep = 1 to reps do
      let e, _ = run_once ~mode:`Off faults in
      off := Float.min !off e;
      let e, _ = run_once ~mode:`Record faults in
      record := Float.min !record e;
      let e, ev = run_once ~mode:`Record_trace faults in
      traced := Float.min !traced e;
      match ev with Some _ -> events := ev | None -> ()
    done;
    let off = !off and record = !record and traced = !traced in
    let events = !events in
    let add mode elapsed =
      let overhead = ((elapsed /. off) -. 1.0) *. 100.0 in
      let e =
        {
          tr_faults = fname;
          tr_loss = loss;
          tr_mode = mode;
          tr_updates = total;
          tr_elapsed_s = elapsed;
          tr_ops_per_s = float_of_int total /. elapsed;
          tr_overhead_pct = overhead;
        }
      in
      entries := e :: !entries;
      Printf.printf "  %-26s | %5.2f | %-12s | %7.2fms %10.0f %+7.2f%%\n"
        e.tr_faults e.tr_loss e.tr_mode (elapsed *. 1e3) e.tr_ops_per_s
        overhead;
      e
    in
    ignore (add "off" off);
    let record_e = add "record" record in
    ignore (add "record+trace" traced);
    (match events with
    | None -> failwith "C17: the traced leg produced no events"
    | Some events ->
      let s = Rlist_obs.Spans.summarize events in
      lags :=
        {
          lg_faults = fname;
          lg_loss = loss;
          lg_unit = s.Rlist_obs.Spans.su_lag_unit;
          lg_ops = s.Rlist_obs.Spans.su_ops;
          lg_incomplete = s.Rlist_obs.Spans.su_incomplete;
          lg_p50 = s.Rlist_obs.Spans.su_lag_p50;
          lg_p90 = s.Rlist_obs.Spans.su_lag_p90;
          lg_p99 = s.Rlist_obs.Spans.su_lag_p99;
          lg_max = s.Rlist_obs.Spans.su_lag_max;
        }
        :: !lags);
    record_e
  in
  let losses = if smoke then [ 0.0; 0.3 ] else [ 0.0; 0.1; 0.3; 0.5 ] in
  let lossy loss =
    { Rlist_net.Faults.none with drop = loss; duplicate = 0.1; reorder = 0.2 }
  in
  (* One untimed warm-up run: the first session pays for growing the
     major heap, and without this the first profile's "off" leg absorbs
     that cost and skews every overhead ratio negative. *)
  ignore (run_once ~mode:`Off (lossy 0.0));
  let record_legs = List.map (fun loss -> profile ~loss (lossy loss)) losses in
  List.iter
    (fun l ->
      Printf.printf
        "  convergence lag @ loss %.2f: p50 %.0f p90 %.0f p99 %.0f max %.0f \
         %s (%d ops, %d incomplete)\n"
        l.lg_loss l.lg_p50 l.lg_p90 l.lg_p99 l.lg_max l.lg_unit l.lg_ops
        l.lg_incomplete)
    (List.rev !lags);
  let worst =
    List.fold_left
      (fun acc e -> Float.max acc e.tr_overhead_pct)
      neg_infinity record_legs
  in
  Printf.printf "  worst record-only overhead: %+.2f%% (acceptance: < 5%%)\n"
    worst;
  (* The smoke leg's runs are short enough that CPU-clock quantization
     alone approaches the bar, so only the full run enforces it. *)
  if (not smoke) && worst >= 5.0 then
    failwith
      (Printf.sprintf
         "C17: record-only overhead %.2f%% breaches the 5%% acceptance bar"
         worst);
  Printf.printf
    "  claim: the flight recorder is a ring-buffer write per engine \
     decision — always-on recording costs < 5%% ops/sec on the batched \
     typing workload at every C15 loss rate, so soaks and fuzz runs keep \
     it armed and dump a replayable witness only on failure; convergence \
     lag grows with the loss rate (retransmission round trips), which the \
     span analyzer quantifies per profile.\n";
  match json_path with
  | None -> ()
  | Some path ->
    trace_write_json ~path (List.rev !entries) (List.rev !lags);
    Printf.printf "  wrote %s (%d entries)\n" path (List.length !entries)

(* --- C18: continuous metadata GC — the long-horizon soak --------------- *)

(* Soaks the pruned Jupiter formulation through a very long horizon
   (one million updates per workload profile in the full run) with the
   continuous compaction driver armed, and gates that live metadata
   and per-op latency stay flat — bounded by a constant, not by the
   horizon.  The control is the unpruned CSS protocol, whose n-ary
   ordered state space keeps every state it has ever built: a short
   horizon is enough to show the unbounded curve (and a long one would
   not finish).  A transparency pair re-runs one profile GC-on and
   GC-off at a modest shared horizon and checks the final-document
   digests are identical — compaction must be semantically invisible.
   Emits BENCH_longrun.json on request; the smoke variant runs the
   same shape and gates at CI-sized horizons. *)

let longrun_write_json ~path results =
  let oc = open_out path in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"benchmark\": \"longrun\",\n";
  out "  \"results\": [\n";
  List.iteri
    (fun i r ->
      out "    %s%s\n"
        (Rlist_run.Longrun.result_to_json r)
        (if i = List.length results - 1 then "" else ","))
    results;
  out "  ]\n";
  out "}\n";
  close_out oc

let c18_longrun ?json_path ?(smoke = false) () =
  section "C18 (longrun): continuous metadata GC, proven flat by soak";
  let module L = Rlist_run.Longrun in
  let module W = Rlist_workload.Workload in
  let gc =
    match Rlist_gc.of_string "ops=256" with
    | Ok p -> p
    | Error msg -> failwith ("C18: " ^ msg)
  in
  let updates = if smoke then 2_000 else 1_000_000 in
  let chunk = if smoke then 250 else 20_000 in
  let control_updates = if smoke then 600 else 4_000 in
  let transparency_updates = if smoke then updates else 20_000 in
  let results = ref [] in
  Printf.printf "  %-10s | %-10s | %-3s | %7s | %9s %7s | %8s %8s %8s\n"
    "profile" "protocol" "gc" "ops" "meta-pk" "flat-m" "p50us" "p99us"
    "flat-lat";
  (* Process CPU seconds, not wall clock: the per-chunk latency samples
     feed the flatness gate, and on a shared container a neighbor's
     burst would bend the curve.  Full-run chunks are seconds each —
     hundreds of 10 ms clock quanta — and the smoke run does not gate
     on latency, so quantization is harmless (the same reasoning as
     C17's CPU-clock minima). *)
  let now () =
    let t = Unix.times () in
    t.Unix.tms_utime +. t.Unix.tms_stime
  in
  let leg ~protocol ?gc ~profile ~updates ~chunk () =
    let r =
      L.run ?gc ~now ~protocol ~profile ~nclients:4 ~updates ~chunk ~seed:7 ()
    in
    if not r.L.l_converged then
      failwith
        (Printf.sprintf "C18: %s/%s diverged" protocol
           (W.profile_name profile));
    results := r :: !results;
    Printf.printf
      "  %-10s | %-10s | %-3s | %7d | %9d %7.2f | %8.2f %8.2f %8.2f\n%!"
      (W.profile_name profile) r.L.l_protocol
      (match r.L.l_gc with None -> "off" | Some _ -> "on")
      r.L.l_updates r.L.l_meta_peak r.L.l_flat_meta r.L.l_p50_us r.L.l_p99_us
      r.L.l_flat_latency;
    r
  in
  let on_legs =
    List.map
      (fun profile ->
        leg ~protocol:"css-pruned" ~gc ~profile ~updates ~chunk ())
      W.all_profiles
  in
  List.iter
    (fun r ->
      let name = W.profile_name r.L.l_profile in
      (* Short smoke chunks sit near the CPU-clock quantum, so only
         the full run holds the latency curve to the flatness bar. *)
      if r.L.l_flat_meta > (if smoke then 3.0 else 2.0) then
        failwith
          (Printf.sprintf "C18: GC-on %s metadata is not flat (%.2f)" name
             r.L.l_flat_meta);
      if (not smoke) && r.L.l_flat_latency > 3.0 then
        failwith
          (Printf.sprintf "C18: GC-on %s latency is not flat (%.2f)" name
             r.L.l_flat_latency))
    on_legs;
  let control =
    leg ~protocol:"css" ~profile:W.Uniform ~updates:control_updates
      ~chunk:(max 1 (control_updates / 8)) ()
  in
  let on_peak = List.fold_left (fun m r -> max m r.L.l_meta_peak) 0 on_legs in
  if control.L.l_meta_peak < 4 * on_peak then
    failwith
      (Printf.sprintf
         "C18: the unpruned control peaked at only %d metadata nodes — not \
          clearly unbounded next to the GC-on peak of %d"
         control.L.l_meta_peak on_peak);
  if control.L.l_flat_meta < 2.0 then
    failwith
      (Printf.sprintf "C18: the unpruned control's metadata looks flat (%.2f)"
         control.L.l_flat_meta);
  let t_chunk = max 1 (transparency_updates / 8) in
  let t_on =
    leg ~protocol:"css-pruned" ~gc ~profile:W.Uniform
      ~updates:transparency_updates ~chunk:t_chunk ()
  in
  let t_off =
    leg ~protocol:"css-pruned" ~profile:W.Uniform
      ~updates:transparency_updates ~chunk:t_chunk ()
  in
  if t_on.L.l_digest <> t_off.L.l_digest then
    failwith
      (Printf.sprintf
         "C18: compaction is not transparent — GC-on digest %s, GC-off %s"
         t_on.L.l_digest t_off.L.l_digest);
  Printf.printf
    "  claim: with the compaction driver armed, live metadata and per-op \
     latency stay flat over the whole horizon on every workload profile \
     (the soak's peak is a constant, not a function of the op count), \
     while the unpruned control's state space grows without bound; the \
     GC-on and GC-off runs of the same seed end in identical documents — \
     compaction is semantically transparent.\n";
  (match json_path with
  | None -> ()
  | Some path ->
    longrun_write_json ~path (List.rev !results);
    Printf.printf "  wrote %s (%d results)\n" path (List.length !results));
  List.rev !results

let figures () =
  figure_f1 ();
  figure_f2_f4 ();
  figure_f3 ();
  figure_f6 ();
  figure_f7 ();
  figure_f8 ()

let claims () =
  c1_metadata ();
  c2_ot_counts ();
  c3_equivalence ();
  c5_growth ();
  c6_hotspot_strong_violations ();
  c7_pruning ();
  c8_center_cost ();
  c9_distributed ();
  c10_latency ();
  c11_coordination_spectrum ()
