(* A small wrapper around bechamel: run each test, OLS-fit the
   monotonic clock against the run count, and print one line per test.
   Plain-text output so the harness works in pipes and CI logs.

   [run] also returns the raw estimates so callers (the document
   scaling family, the JSON emitter) can post-process them. *)

open Bechamel
open Toolkit

(* --- monotonic wall clock --------------------------------------------- *)

(* [Sys.time] measures CPU seconds; the C-section timings and the
   observability histograms both want wall-clock nanoseconds from the
   same monotonic source bechamel samples. *)
let now_ns () = Monotonic_clock.get ()

let now_s () = now_ns () /. 1e9

(* Point the metrics-layer timers at the real clock (the library's
   dependency-free default is a CPU-time fallback). *)
let install_metrics_clock () = Rlist_obs.Metrics.set_clock now_ns

let ns_per_run results name =
  match Hashtbl.find_opt results name with
  | None -> nan
  | Some ols -> (
    match Analyze.OLS.estimates ols with
    | Some (est :: _) -> est
    | Some [] | None -> nan)

let pretty_ns ns =
  if Float.is_nan ns then "n/a"
  else if ns < 1e3 then Printf.sprintf "%8.1f ns" ns
  else if ns < 1e6 then Printf.sprintf "%8.2f us" (ns /. 1e3)
  else if ns < 1e9 then Printf.sprintf "%8.2f ms" (ns /. 1e6)
  else Printf.sprintf "%8.2f s " (ns /. 1e9)

(* [run tests] benchmarks the given bechamel tests and prints
   "name: time/run" lines, returning the raw estimates.  Test names are
   prefixed with "bench/" (the group name) in the result table. *)
let run ?(quota = 0.5) ?(quiet = false) tests =
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~stabilize:false ()
  in
  let grouped = Test.make_grouped ~name:"bench" tests in
  let raw = Benchmark.all cfg instances grouped in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols (Instance.monotonic_clock) raw in
  if not quiet then
    Hashtbl.iter
      (fun name ols_result ->
        match Analyze.OLS.estimates ols_result with
        | Some (est :: _) ->
          Printf.printf "  %-42s %s/op\n" name (pretty_ns est)
        | Some [] | None -> Printf.printf "  %-42s (no estimate)\n" name)
      results;
  results

(* --- machine-readable output ------------------------------------------ *)

(* One measured point of the document-scaling family. *)
type json_entry = {
  name : string;
  impl : string;  (* "rope" | "reference" | "engine" *)
  op : string;    (* "insert" | "delete" | "nth" | "to_string" | "replay" *)
  size : int;
  ns_per_op : float;
}

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Write the entries as a stable, machine-readable JSON document so the
   perf trajectory can be tracked across PRs. *)
let write_json ~path ~benchmark entries =
  let oc = open_out path in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"benchmark\": \"%s\",\n" (json_escape benchmark);
  out "  \"unit\": \"ns_per_op\",\n";
  out "  \"results\": [\n";
  List.iteri
    (fun i e ->
      out
        "    {\"name\": \"%s\", \"impl\": \"%s\", \"op\": \"%s\", \"size\": \
         %d, \"ns_per_op\": %s}%s\n"
        (json_escape e.name) (json_escape e.impl) (json_escape e.op) e.size
        (if Float.is_nan e.ns_per_op then "null"
         else Printf.sprintf "%.2f" e.ns_per_op)
        (if i = List.length entries - 1 then "" else ","))
    entries;
  out "  ]\n";
  out "}\n";
  close_out oc
