(* The benchmark harness: regenerates every paper figure (F-sections),
   measures every quantitative claim (C-sections), and micro-benchmarks
   the protocols with bechamel (C4).  EXPERIMENTS.md records a
   reference run of this executable.

   Run with: dune exec bench/main.exe
   Pass --quick to skip the (slower) bechamel micro-benchmarks.
   Pass --json to also write the document-scaling results to
   BENCH_document.json (machine-readable, tracked across PRs).
   Pass --smoke to run only a ~1-second-quota document-scaling smoke
   bench (the @bench-smoke dune alias).
   Pass --mc to run only the C14 model-checking family (regenerates
   BENCH_mc.json with --json at the full state budget).
   Pass --net to run only the C15 unreliable-network family
   (regenerates BENCH_net.json with --json).
   Pass --batch to run only the C16 batching/fast-path family
   (regenerates BENCH_batch.json with --json; the smoke bench always
   emits it — it carries the acceptance speedup numbers).
   Pass --trace to run only the C17 flight-recorder family
   (regenerates BENCH_trace.json with --json; carries the < 5%
   recorder-overhead acceptance number and the convergence-lag
   percentiles per loss rate).
   Pass --longrun to run only the C18 continuous-GC soak family
   (regenerates BENCH_longrun.json with --json at the full
   million-op-per-profile horizon — expect it to run for a while). *)

open Rlist_model
open Bechamel

(* Whole-session micro-benchmarks: one fixed 50-update 4-client
   session per run, per protocol. *)
let css_session () =
  let module E = Rlist_sim.Engine.Make (Jupiter_css.Protocol) in
  let t = E.create ~nclients:4 () in
  let rng = Random.State.make [| 1234 |] in
  ignore
    (E.run_random t ~rng
       ~params:{ Rlist_sim.Schedule.default_params with updates = 50 })

let cscw_session () =
  let module E = Rlist_sim.Engine.Make (Jupiter_cscw.Protocol) in
  let t = E.create ~nclients:4 () in
  let rng = Random.State.make [| 1234 |] in
  ignore
    (E.run_random t ~rng
       ~params:{ Rlist_sim.Schedule.default_params with updates = 50 })

let rga_session () =
  let module E = Rlist_sim.Engine.Make (Jupiter_rga.Protocol) in
  let t = E.create ~nclients:4 () in
  let rng = Random.State.make [| 1234 |] in
  ignore
    (E.run_random t ~rng
       ~params:{ Rlist_sim.Schedule.default_params with updates = 50 })

(* Primitive-operation micro-benchmarks. *)
let xform_bench =
  let doc = Document.of_string "abcdefgh" in
  let o1 =
    let id = Rlist_model.Op_id.make ~client:1 ~seq:1 in
    Rlist_ot.Op.make_ins ~id (Element.make ~value:'x' ~id) 3
  in
  let o2 =
    Rlist_ot.Op.make_del
      ~id:(Rlist_model.Op_id.make ~client:2 ~seq:1)
      (Document.nth doc 5) 5
  in
  fun () -> ignore (Rlist_ot.Transform.xform_pair o1 o2)

let weak_check_bench =
  (* Fixed 40-update trace, checked per run. *)
  let module E = Rlist_sim.Engine.Make (Jupiter_css.Protocol) in
  let t = E.create ~nclients:4 () in
  let rng = Random.State.make [| 99 |] in
  ignore
    (E.run_random t ~rng
       ~params:{ Rlist_sim.Schedule.default_params with updates = 40 });
  let trace = E.trace t in
  fun () -> ignore (Rlist_spec.Weak_spec.check trace)

(* Same fixed session with the observability layer attached: once with
   metrics only (no sink — the advertised near-zero configuration) and
   once fully traced into a memory sink.  Compare against
   css/session-50ops-4clients for the overhead. *)
let css_session_obs ~traced () =
  let module E = Rlist_sim.Engine.Make (Jupiter_css.Protocol) in
  let t = E.create ~nclients:4 () in
  let sink =
    if traced then Rlist_obs.Sink.memory () else Rlist_obs.Sink.null
  in
  E.attach_obs t (Rlist_obs.Obs.make ~sink ());
  let rng = Random.State.make [| 1234 |] in
  ignore
    (E.run_random t ~rng
       ~params:{ Rlist_sim.Schedule.default_params with updates = 50 })

let micro_benchmarks () =
  Printf.printf "\n=== C4: bechamel micro-benchmarks ===\n";
  Printf.printf
    "  (one Test.make per measured quantity; times are per operation)\n";
  ignore
    (Harness.run
       [
         Test.make ~name:"ot/xform_pair" (Staged.stage xform_bench);
         Test.make ~name:"css/session-50ops-4clients"
           (Staged.stage css_session);
         Test.make ~name:"css/session-50ops-metrics"
           (Staged.stage (css_session_obs ~traced:false));
         Test.make ~name:"css/session-50ops-traced"
           (Staged.stage (css_session_obs ~traced:true));
         Test.make ~name:"cscw/session-50ops-4clients"
           (Staged.stage cscw_session);
         Test.make ~name:"rga/session-50ops-4clients"
           (Staged.stage rga_session);
         Test.make ~name:"spec/weak-check-40ops"
           (Staged.stage weak_check_bench);
       ])

let () =
  let flag f = Array.exists (fun a -> a = f) Sys.argv in
  let quick = flag "--quick" in
  let json = flag "--json" in
  let smoke = flag "--smoke" in
  let json_path = if json then Some "BENCH_document.json" else None in
  let obs_json_path = if json then Some "BENCH_obs.json" else None in
  let mc_json_path = if json then Some "BENCH_mc.json" else None in
  let net_json_path = if json then Some "BENCH_net.json" else None in
  let batch_json_path = if json then Some "BENCH_batch.json" else None in
  let trace_json_path = if json then Some "BENCH_trace.json" else None in
  let longrun_json_path = if json then Some "BENCH_longrun.json" else None in
  Harness.install_metrics_clock ();
  if flag "--mc" then
    ignore (Experiments.c14_model_checking ?json_path:mc_json_path ())
  else if flag "--net" then
    Experiments.c15_network ?json_path:net_json_path ()
  else if flag "--batch" then
    Experiments.c16_batching ?json_path:batch_json_path ()
  else if flag "--trace" then
    Experiments.c17_trace ?json_path:trace_json_path ()
  else if flag "--longrun" then
    (* --longrun --smoke runs the same family and gates at CI horizons
       (the longrun CI job uses it to regenerate the artifact). *)
    ignore (Experiments.c18_longrun ?json_path:longrun_json_path ~smoke ())
  else if smoke then begin
    (* Tiny quota, small sizes: catches document-layer regressions and
       crashes in seconds, without a full bench run.  The observability
       counters are deterministic and cheap, so the canary always
       cross-checks them too. *)
    print_endline "document-scaling smoke bench (~1s quota)";
    ignore
      (Experiments.document_scaling ~sizes:[ 100; 1_000 ] ~quota:0.05
         ~replay_ops:500 ~engine_updates:50 ?json_path ());
    Experiments.c13_observability ?json_path:obs_json_path ();
    ignore
      (Experiments.c14_model_checking ?json_path:mc_json_path ~smoke:true ());
    Experiments.c15_network ?json_path:net_json_path ~smoke:true ();
    (* Always emitted in smoke: BENCH_batch.json carries the C16
       batched-vs-unbatched speedup numbers the CI gate reads. *)
    Experiments.c16_batching ~json_path:"BENCH_batch.json" ~smoke:true ();
    (* Also always emitted: BENCH_trace.json carries the C17 recorder
       overhead acceptance number and the convergence-lag percentiles. *)
    Experiments.c17_trace ~json_path:"BENCH_trace.json" ~smoke:true ();
    (* And the C18 soak, at CI horizons: the flatness gates and the
       GC-on/GC-off digest equality run on every smoke pass, and the
       emitted BENCH_longrun.json is the artifact the longrun CI job
       uploads. *)
    ignore
      (Experiments.c18_longrun ~json_path:"BENCH_longrun.json" ~smoke:true ())
  end
  else begin
    print_endline
      "Jupiter Protocol Revisited — benchmark & figure-regeneration harness";
    print_endline
      "(paper: Wei, Huang, Lu — PODC'18 / arXiv:1708.04754; see EXPERIMENTS.md)";
    Experiments.figures ();
    Experiments.claims ();
    Experiments.c13_observability ?json_path:obs_json_path ();
    ignore (Experiments.c14_model_checking ?json_path:mc_json_path ());
    Experiments.c15_network ?json_path:net_json_path ();
    Experiments.c16_batching ?json_path:batch_json_path ();
    Experiments.c17_trace ?json_path:trace_json_path ();
    (* The full C18 soak (a million ops per profile) dwarfs the rest of
       the harness; regenerate BENCH_longrun.json with --longrun --json
       instead.  The full run still smoke-checks the family. *)
    ignore (Experiments.c18_longrun ?json_path:longrun_json_path ~smoke:true ());
    if not quick then micro_benchmarks ();
    ignore (Experiments.document_scaling ?json_path ())
  end;
  print_endline "\ndone."
