(* A realistic collaborative editing session: several users type
   concurrently under a chosen workload profile, with messages
   arriving out of step, while the three correct protocols (CSS
   Jupiter, CSCW Jupiter, RGA) run side by side.

   At the end the example reports, per protocol: the converged
   document, operation counts, transformation counts, metadata
   footprints, and the verdicts of the three list specifications —
   reproducing in one run the paper's comparison landscape.  The CSS
   run carries the observability layer, so the session closes with its
   metrics report (message counts, per-delivery transform and channel
   depth distributions).

   Run with: dune exec examples/collab_session.exe [-- profile [seed]]
   where profile is one of: uniform typing hotspot append-log churn *)

open Rlist_model

let nclients = 4

let updates = 120

module Css = Rlist_sim.Engine.Make (Jupiter_css.Protocol)
module Cscw = Rlist_sim.Engine.Make (Jupiter_cscw.Protocol)
module Rga = Rlist_sim.Engine.Make (Jupiter_rga.Protocol)

let verdict check trace =
  if Rlist_spec.Check.is_satisfied (check trace) then "yes" else "NO"

let report name ~doc ~trace ~ots ~metadata =
  Printf.printf "%-6s final=%S (%d chars)\n" name (Document.to_string doc)
    (Document.length doc);
  Printf.printf "       transformations performed: %d\n" ots;
  Printf.printf "       metadata footprint (all replicas): %d\n" metadata;
  Printf.printf "       convergence=%s weak=%s strong=%s\n"
    (verdict Rlist_spec.Convergence.check trace)
    (verdict Rlist_spec.Weak_spec.check trace)
    (verdict Rlist_spec.Strong_spec.check trace)

let () =
  let profile_name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "typing" in
  let seed =
    if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 2024
  in
  let profile =
    match Rlist_workload.Workload.profile_of_name profile_name with
    | Some p -> p
    | None ->
      Printf.eprintf "unknown profile %S; using typing\n" profile_name;
      Rlist_workload.Workload.Typing
  in
  Printf.printf "=== Collaborative session: %d clients, %d updates, %s ===\n"
    nclients updates
    (Rlist_workload.Workload.profile_name profile);

  let params = Rlist_workload.Workload.params profile ~updates in

  (* The CSS run produces the concrete schedule... *)
  let css = Css.create ~nclients () in
  let obs = Rlist_obs.Obs.make () in
  Css.attach_obs css obs;
  let rng = Random.State.make [| seed |] in
  let intent = Rlist_workload.Workload.intent_generator profile ~nclients ~rng in
  let schedule = Css.run_random ~intent css ~rng ~params in
  Printf.printf "schedule: %d events, %d updates\n"
    (List.length schedule)
    (Rlist_sim.Schedule.update_count schedule);

  (* ...which the CSCW protocol replays verbatim (Theorem 7.1)... *)
  let cscw = Cscw.create ~nclients () in
  Cscw.run cscw schedule;

  (* ...while RGA runs the same profile and seed with its own driver
     (it is not behaviour-equivalent to Jupiter, so concrete Jupiter
     schedules need not stay in bounds for it). *)
  let rga = Rga.create ~nclients () in
  let rng' = Random.State.make [| seed |] in
  let intent' =
    Rlist_workload.Workload.intent_generator profile ~nclients ~rng:rng'
  in
  ignore (Rga.run_random ~intent:intent' rga ~rng:rng' ~params);

  report "CSS" ~doc:(Css.server_document css) ~trace:(Css.trace css)
    ~ots:(Css.total_ot_count css)
    ~metadata:(Css.total_metadata_size css);
  report "CSCW" ~doc:(Cscw.server_document cscw) ~trace:(Cscw.trace cscw)
    ~ots:(Cscw.total_ot_count cscw)
    ~metadata:(Cscw.total_metadata_size cscw);
  report "RGA" ~doc:(Rga.server_document rga) ~trace:(Rga.trace rga)
    ~ots:(Rga.total_ot_count rga)
    ~metadata:(Rga.total_metadata_size rga);

  (* Theorem 7.1 check: CSS and CSCW agree state by state. *)
  let equal_behaviours =
    let b1 = Css.behavior css and b2 = Cscw.behavior cscw in
    List.length b1 = List.length b2
    && List.for_all2
         (fun (r1, d1) (r2, d2) ->
           Replica_id.equal r1 r2 && Document.equal d1 d2)
         b1 b2
  in
  Printf.printf "CSS/CSCW behaviours identical under this schedule: %b\n"
    equal_behaviours;

  Printf.printf "\n--- CSS session metrics (observability layer) ---\n";
  Format.printf "%a@." Rlist_obs.Obs.report obs
